#include "workloads/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

PatternWorkload::PatternWorkload(WorkloadTraits traits,
                                 std::vector<PhaseSpec> phaseList,
                                 std::uint64_t seed)
    : tr(std::move(traits)), phases(std::move(phaseList)), seed0(seed),
      rng(seed)
{
    if (phases.empty())
        mct_fatal("PatternWorkload '", tr.name, "': needs >= 1 phase");
    for (const auto &ph : phases) {
        if (ph.insts == 0)
            mct_fatal("PatternWorkload: zero-length phase");
        const auto &pt = ph.pattern;
        if (pt.memIntensity <= 0.0 || pt.memIntensity > 1.0)
            mct_fatal("PatternWorkload: memIntensity out of (0,1]");
        if (pt.numStreams == 0 && pt.streamFrac > 0.0)
            mct_fatal("PatternWorkload: streamFrac > 0 with no streams");
        if (pt.wsBytes < lineBytes || pt.streamBytes < lineBytes)
            mct_fatal("PatternWorkload: working set smaller than a line");
    }
    enterPhase(0);
}

void
PatternWorkload::reset(std::uint64_t seed)
{
    seed0 = seed;
    rng = Rng(seed);
    phaseIdx = 0;
    instInPhase = 0;
    totalInsts = 0;
    rmwPending = false;
    enterPhase(0);
}

void
PatternWorkload::enterPhase(std::size_t idx)
{
    phaseIdx = idx;
    instInPhase = 0;
    const PatternSpec &pt = phases[idx].pattern;
    streamPos.assign(pt.numStreams, 0);
    // Desynchronize the streams so they touch different rows/banks.
    for (unsigned s = 0; s < pt.numStreams; ++s)
        streamPos[s] = rng.below(std::max<std::uint64_t>(
            1, pt.streamBytes / lineBytes)) * lineBytes;
}

Addr
PatternWorkload::genAddr()
{
    const PatternSpec &pt = pat();
    Addr addr;
    if (pt.numStreams > 0 && rng.uniform() < pt.streamFrac) {
        const unsigned s =
            static_cast<unsigned>(rng.below(pt.numStreams));
        // Each stream owns a contiguous region of the working set.
        const Addr regionBase = static_cast<Addr>(s) * pt.streamBytes;
        addr = regionBase + streamPos[s];
        streamPos[s] = (streamPos[s] + pt.stride) % pt.streamBytes;
    } else if (pt.reuseFrac > 0.0 && rng.uniform() < pt.reuseFrac) {
        addr = rng.below(std::max<std::uint64_t>(
            1, pt.hotBytes / lineBytes)) * lineBytes;
    } else {
        addr = rng.below(std::max<std::uint64_t>(
            1, pt.wsBytes / lineBytes)) * lineBytes;
    }
    return (addr & ~static_cast<Addr>(lineBytes - 1)) + addrBase;
}

void
PatternWorkload::next(WorkloadOp &op)
{
    const PatternSpec &pt = pat();

    // gups-style read-modify-write: the store to the just-loaded line
    // follows immediately.
    if (rmwPending) {
        rmwPending = false;
        op.gap = 0;
        op.isWrite = true;
        op.addr = rmwAddr;
        op.dependent = false;
        return;
    }

    // Bursty intensity modulation (Section 5.2): within each burst
    // period the first burstDuty fraction runs at full intensity.
    const std::uint64_t posInPeriod = totalInsts % pt.burstPeriod;
    const bool bursting =
        static_cast<double>(posInPeriod) <
        pt.burstDuty * static_cast<double>(pt.burstPeriod);
    const double intensity =
        pt.memIntensity * (bursting ? 1.0 : pt.idleScale);

    // Geometric gap with the configured mean: floor(Exp(lambda))
    // is geometric, and lambda = 1/ln(1 + 1/m) makes its mean exactly
    // m (plain floor(Exp(m)) would undershoot by ~0.5).
    const double meanGap = std::max(0.0, 1.0 / intensity - 1.0);
    double g = 0.0;
    if (meanGap > 1e-9) {
        const double lambda = 1.0 / std::log1p(1.0 / meanGap);
        g = rng.exponential(lambda);
    }
    op.gap = static_cast<std::uint32_t>(std::min(g, 100000.0));

    op.addr = genAddr();
    if (pt.rmw) {
        op.isWrite = false;
        op.dependent = true;
        rmwPending = true;
        rmwAddr = op.addr;
    } else {
        op.isWrite = rng.uniform() < pt.writeFrac;
        op.dependent = !op.isWrite && rng.uniform() < pt.depProb;
    }

    const InstCount cost = op.gap + 1;
    instInPhase += cost;
    totalInsts += cost;
    if (instInPhase >= phases[phaseIdx].insts)
        enterPhase((phaseIdx + 1) % phases.size());
}

void
PatternWorkload::serialize(Serializer &s) const
{
    s.putU64(seed0);
    rng.serialize(s);
    s.putU64(addrBase);
    s.putU64(phaseIdx);
    s.putU64(instInPhase);
    s.putU64(totalInsts);
    s.putU32(static_cast<std::uint32_t>(streamPos.size()));
    for (std::uint64_t pos : streamPos)
        s.putU64(pos);
    s.putBool(rmwPending);
    s.putU64(rmwAddr);
}

void
PatternWorkload::deserialize(Deserializer &d)
{
    seed0 = d.getU64();
    rng.deserialize(d);
    addrBase = d.getU64();
    phaseIdx = d.getU64();
    if (phaseIdx >= phases.size())
        mct_panic("checkpoint workload phase out of range");
    instInPhase = d.getU64();
    totalInsts = d.getU64();
    streamPos.assign(d.getU32(), 0);
    for (std::uint64_t &pos : streamPos)
        pos = d.getU64();
    rmwPending = d.getBool();
    rmwAddr = d.getU64();
}

} // namespace mct
