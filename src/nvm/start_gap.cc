#include "nvm/start_gap.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

StartGap::StartGap(std::uint64_t rows, std::uint64_t gapPeriod)
    : nRows(rows), period(gapPeriod), gap(rows)
{
    if (rows == 0)
        mct_fatal("StartGap: bank needs at least one row");
    if (period == 0)
        mct_fatal("StartGap: gap period must be positive");
}

std::uint64_t
StartGap::mapRow(std::uint64_t logicalRow) const
{
    if (logicalRow >= nRows)
        mct_panic("StartGap::mapRow: row out of range");
    // Canonical Start-Gap: rotate by the start pointer over the
    // nRows logical slots, then skip the gap slot (physical rows are
    // nRows + 1, so the skipped image stays in range).
    const std::uint64_t rotated = (logicalRow + start) % nRows;
    return rotated >= gap ? rotated + 1 : rotated;
}

std::int64_t
StartGap::onWrite()
{
    if (++sinceMove < period)
        return -1;
    sinceMove = 0;
    ++moves;
    if (gap == 0) {
        // Wrap: pure bookkeeping, no copy (Qureshi et al., Fig 4).
        gap = nRows;
        ++starts;
        start = (start + 1) % nRows;
        return -1;
    }
    const std::int64_t filled = static_cast<std::int64_t>(gap);
    --gap;
    return filled;
}

RowWearTable::RowWearTable(unsigned banks,
                           std::uint64_t physicalRowsPerBank)
    : nBanks(banks), rowsPerBank(physicalRowsPerBank),
      wear(static_cast<std::size_t>(banks) * physicalRowsPerBank, 0.0f)
{
    if (banks == 0 || physicalRowsPerBank == 0)
        mct_fatal("RowWearTable: empty geometry");
}

void
RowWearTable::add(unsigned bank, std::uint64_t physicalRow, double w)
{
    if (bank >= nBanks || physicalRow >= rowsPerBank)
        mct_panic("RowWearTable::add: out of range");
    auto &cell = wear[static_cast<std::size_t>(bank) * rowsPerBank +
                      physicalRow];
    if (cell == 0.0f && w > 0.0)
        ++touched;
    cell += static_cast<float>(w);
    sum += w;
    worst = std::max(worst, static_cast<double>(cell));
}

double
RowWearTable::levelingEfficiency() const
{
    if (worst <= 0.0 || touched == 0)
        return 1.0;
    const double avg = sum / static_cast<double>(touched);
    return avg / worst;
}

void
StartGap::serialize(Serializer &s) const
{
    s.putU64(nRows);
    s.putU64(period);
    s.putU64(gap);
    s.putU64(start);
    s.putU64(sinceMove);
    s.putU64(moves);
    s.putU64(starts);
}

void
StartGap::deserialize(Deserializer &d)
{
    const std::uint64_t rows = d.getU64();
    const std::uint64_t per = d.getU64();
    if (rows != nRows || per != period)
        mct_panic("checkpoint Start-Gap geometry mismatch");
    gap = d.getU64();
    start = d.getU64();
    sinceMove = d.getU64();
    moves = d.getU64();
    starts = d.getU64();
}

void
RowWearTable::serialize(Serializer &s) const
{
    s.putU32(nBanks);
    s.putU64(rowsPerBank);
    for (float cell : wear)
        s.putF64(static_cast<double>(cell));
    s.putF64(worst);
    s.putF64(sum);
    s.putU64(touched);
}

void
RowWearTable::deserialize(Deserializer &d)
{
    const unsigned banks = d.getU32();
    const std::uint64_t rows = d.getU64();
    if (banks != nBanks || rows != rowsPerBank)
        mct_panic("checkpoint row-wear geometry mismatch");
    for (float &cell : wear)
        cell = static_cast<float>(d.getF64());
    worst = d.getF64();
    sum = d.getF64();
    touched = d.getU64();
}

} // namespace mct
