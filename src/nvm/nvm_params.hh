/**
 * @file
 * Parameters of the simulated ReRAM main memory (paper Table 9).
 *
 * The write-latency-vs-endurance tradeoff follows the Mellow Writes
 * law adopted by the paper: a write issued with latency ratio r takes
 * tWP = 150 * r ns and the cell endurance improves quadratically to
 * 8e6 * r^2 writes. Equivalently, in "fast-write-equivalent" wear
 * units, a ratio-r write costs 1 / r^2 of a nominal write.
 */

#ifndef MCT_NVM_NVM_PARAMS_HH
#define MCT_NVM_NVM_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace mct
{

/** How the device levels wear across its cells. */
enum class WearLevelMode
{
    /** Table 9's assumption: an effective scheme reaching
     *  wearLevelEff of ideal; wear is tracked per bank. */
    AssumedEfficiency,

    /** Explicit Start-Gap remapping at row granularity with
     *  measured (not assumed) leveling. */
    StartGap,
};

/**
 * Geometry, timing, and endurance parameters of the NVM main memory.
 * Defaults reproduce Table 9 (single-channel, 4 GB, 16 banks).
 */
struct NvmParams
{
    /** Total capacity in bytes (default 4 GB). */
    std::uint64_t capacityBytes = 4ULL << 30;

    /** Number of banks (Table 9: 16). */
    unsigned numBanks = 16;

    /** Row buffer size in bytes (Table 9: 1 KB). */
    unsigned rowBytes = 1024;

    /** Row activate latency: 48 mem cycles = 120 ns. */
    Tick tRCD = 120 * tickNs;

    /** Column access latency: 1 mem cycle = 2.5 ns. */
    Tick tCAS = 2500; // 2.5 ns in ps

    /** 64 B burst over a 64-bit bus at 400 MHz: 8 beats = 20 ns. */
    Tick tBURST = 20 * tickNs;

    /** Four-activate window (Table 9: tFAW = 50 ns). */
    Tick tFAW = 50 * tickNs;

    /** Nominal (ratio 1.0) write pulse latency: 150 ns. */
    Tick tWPBase = 150 * tickNs;

    /** Cell endurance at ratio 1.0 (Table 9: 8e6 writes). */
    double enduranceBase = 8e6;

    /**
     * Efficiency of the assumed bank-granularity wear-leveling scheme
     * (Table 9: e.g. Start-Gap achieving 95% average lifetime).
     */
    double wearLevelEff = 0.95;

    /** Reported lifetimes are capped here to keep statistics finite. */
    double maxLifetimeYears = 1000.0;

    /** Wear-leveling model (see WearLevelMode). */
    WearLevelMode wearLevelMode = WearLevelMode::AssumedEfficiency;

    /**
     * Write-latency-vs-retention trade-off (Table 1): short-retention
     * writes complete in retentionRatio of the nominal pulse but the
     * written row must be refreshed (scrubbed) within retentionTime.
     * The real constant is seconds; it is scaled to simulated-run
     * lengths like every other time constant in this repo.
     */
    double retentionRatio = 0.6;
    Tick retentionTime = 2 * tickMs;

    /**
     * Read-latency-vs-disturbance trade-off (Table 1): fast reads
     * activate in tRCDFast but disturb the row; after
     * disturbThreshold fast reads since the last write the row needs
     * a scrub write.
     */
    Tick tRCDFast = 60 * tickNs;
    unsigned disturbThreshold = 64;

    /** Start-Gap: writes between gap movements. */
    std::uint64_t startGapPeriod = 100;

    /** Wear capacity of one row (used by the Start-Gap mode, which
     *  levels explicitly and therefore takes no efficiency credit). */
    double
    rowWearCapacity() const
    {
        return static_cast<double>(linesPerRow()) * enduranceBase;
    }

    /** Cache lines per row buffer. */
    unsigned linesPerRow() const { return rowBytes / lineBytes; }

    /** Cache lines per bank. */
    std::uint64_t
    linesPerBank() const
    {
        return capacityBytes / lineBytes / numBanks;
    }

    /** Rows per bank. */
    std::uint64_t
    rowsPerBank() const
    {
        return linesPerBank() / linesPerRow();
    }

    /**
     * Total fast-write-equivalent wear a bank can absorb before the
     * memory is considered worn out, including leveling efficiency.
     */
    double
    bankWearCapacity() const
    {
        return static_cast<double>(linesPerBank()) * enduranceBase *
               wearLevelEff;
    }

    /** Write pulse duration for a given latency ratio. */
    Tick
    writePulse(double ratio) const
    {
        return static_cast<Tick>(static_cast<double>(tWPBase) * ratio);
    }

    /** Fast-write-equivalent wear of one write at the given ratio. */
    static double
    wearOfWrite(double ratio)
    {
        return 1.0 / (ratio * ratio);
    }

    /** Abort with mct_fatal if the parameters are inconsistent. */
    void validate() const;
};

} // namespace mct

#endif // MCT_NVM_NVM_PARAMS_HH
