#include "nvm/bank.hh"

// Bank is a plain state record; logic lives in the controller. This
// translation unit exists so the target has a stable archive member
// for the class and a place for future out-of-line growth.
