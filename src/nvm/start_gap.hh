/**
 * @file
 * Start-Gap wear leveling (Qureshi et al., MICRO'09) at row
 * granularity.
 *
 * Table 9 *assumes* an effective bank-granularity wear-leveling
 * scheme achieving 95% of ideal lifetime; this module implements the
 * scheme the paper cites so the assumption can be validated rather
 * than taken on faith (see bench/bench_ablation_wear_leveling).
 *
 * Each bank owns one spare row and a gap pointer. Every `gapPeriod`
 * writes the gap moves down by one row, which copies the displaced
 * row into the gap (a full row write, charged as wear). After
 * rows+1 movements the start pointer advances, completing one
 * rotation; over time every logical row visits every physical row.
 *
 * Mapping (per the paper): with gap G and start S over R+1 physical
 * rows, logical row L maps to P = (L + S) mod (R + 1), skipping the
 * gap: if P >= G then P + 1... implemented in the standard two-case
 * form below.
 */

#ifndef MCT_NVM_START_GAP_HH
#define MCT_NVM_START_GAP_HH

#include <cstdint>
#include <vector>


namespace mct
{

class Serializer;
class Deserializer;

/**
 * Start-Gap remapping state for one bank.
 */
class StartGap
{
  public:
    /**
     * @param rows Logical rows in the bank (physical rows = rows+1).
     * @param gapPeriod Writes between gap movements (the paper uses
     *        100; smaller moves the gap faster at more overhead).
     */
    StartGap(std::uint64_t rows, std::uint64_t gapPeriod = 100);

    /** Map a logical row to its current physical row. */
    std::uint64_t mapRow(std::uint64_t logicalRow) const;

    /**
     * Account one serviced write. When the gap moves, returns the
     * physical row that received the displaced row's copy (the
     * caller charges one row-copy of wear there); -1 otherwise.
     */
    std::int64_t onWrite();

    /** Gap movements so far. */
    std::uint64_t gapMoves() const { return moves; }

    /** Completed full rotations of the start pointer. */
    std::uint64_t rotations() const { return starts; }

    /** Physical rows managed (logical rows + 1 spare). */
    std::uint64_t physicalRows() const { return nRows + 1; }

    /** Checkpoint the remapping pointers and counters. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize() (same geometry). */
    void deserialize(Deserializer &d);

  private:
    std::uint64_t nRows;
    std::uint64_t period;
    std::uint64_t gap;        // current gap position in [0, nRows]
    std::uint64_t start = 0;  // rotation offset
    std::uint64_t sinceMove = 0;
    std::uint64_t moves = 0;
    std::uint64_t starts = 0;
};

/**
 * Per-row wear tracking for a device using Start-Gap. Row-granular:
 * assumes intra-row accesses spread across the row's lines (the same
 * granularity at which Start-Gap levels).
 */
class RowWearTable
{
  public:
    RowWearTable(unsigned banks, std::uint64_t physicalRowsPerBank);

    /** Add wear (fast-write-equivalent line writes) to one row. */
    void add(unsigned bank, std::uint64_t physicalRow, double wear);

    /** Most-worn row's wear across the device. */
    double maxRowWear() const { return worst; }

    /** Total wear recorded. */
    double total() const { return sum; }

    /**
     * Achieved leveling efficiency: average row wear divided by the
     * maximum row wear (1.0 = perfectly level). Only meaningful once
     * wear has accumulated.
     */
    double levelingEfficiency() const;

    /** Checkpoint the per-row wear cells and aggregates. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize() (same geometry). */
    void deserialize(Deserializer &d);

  private:
    unsigned nBanks;
    std::uint64_t rowsPerBank;
    std::vector<float> wear; // banks x physicalRowsPerBank
    double worst = 0.0;
    double sum = 0.0;
    std::uint64_t touched = 0;
};

} // namespace mct

#endif // MCT_NVM_START_GAP_HH
