/**
 * @file
 * Per-bank state of the NVM device: busy window, open row, and
 * accumulated wear. Scheduling decisions live in the memory
 * controller; the bank only records physical state.
 */

#ifndef MCT_NVM_BANK_HH
#define MCT_NVM_BANK_HH

#include <cstdint>

#include "common/serialize.hh"
#include "common/types.hh"

namespace mct
{

/**
 * State record for a single NVM bank.
 */
class Bank
{
  public:
    /** The bank can start a new operation at or after this tick. */
    Tick busyUntil = 0;

    /** Currently open row, or -1 when no row is open. */
    std::int64_t openRow = -1;

    /** True while the in-progress operation is a write. */
    bool writing = false;

    /** Start tick of the in-progress write (valid when writing). */
    Tick writeStart = 0;

    /** Latency ratio of the in-progress write (valid when writing). */
    double writeRatio = 1.0;

    /** Accumulated wear in fast-write-equivalent line writes. */
    double wear = 0.0;

    /** Completed reads serviced by this bank. */
    std::uint64_t reads = 0;

    /** Row-buffer hits among those reads. */
    std::uint64_t rowHits = 0;

    /** Completed writes performed by this bank. */
    std::uint64_t writes = 0;

    /** Ticks this bank has spent busy (for utilization/energy). */
    Tick busyTicks = 0;

    /**
     * Degradation multiplier applied to this bank's operation
     * latencies (aging/thermal drift; 1.0 = healthy). Set only by the
     * fault-injection harness via NvmDevice::setBankDegradation.
     */
    double latencyFactor = 1.0;

    /** Degradation multiplier applied to wear charged to this bank
     *  (weak cells wear faster; 1.0 = healthy). */
    double wearFactor = 1.0;

    /** Forget transient state but keep wear (used on config switch). */
    void
    quiesce()
    {
        writing = false;
        openRow = -1;
    }

    /** Checkpoint the full physical state of the bank. */
    void
    serialize(Serializer &s) const
    {
        s.putU64(busyUntil);
        s.putI64(openRow);
        s.putBool(writing);
        s.putU64(writeStart);
        s.putF64(writeRatio);
        s.putF64(wear);
        s.putU64(reads);
        s.putU64(rowHits);
        s.putU64(writes);
        s.putU64(busyTicks);
        s.putF64(latencyFactor);
        s.putF64(wearFactor);
    }

    /** Restore state written by serialize(). */
    void
    deserialize(Deserializer &d)
    {
        busyUntil = d.getU64();
        openRow = d.getI64();
        writing = d.getBool();
        writeStart = d.getU64();
        writeRatio = d.getF64();
        wear = d.getF64();
        reads = d.getU64();
        rowHits = d.getU64();
        writes = d.getU64();
        busyTicks = d.getU64();
        latencyFactor = d.getF64();
        wearFactor = d.getF64();
    }
};

} // namespace mct

#endif // MCT_NVM_BANK_HH
