#include "nvm/device.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/instrument.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

NvmDevice::NvmDevice(const NvmParams &params)
    : p(params)
{
    p.validate();
    banks.resize(p.numBanks);
    if (p.wearLevelMode == WearLevelMode::StartGap) {
        for (unsigned b = 0; b < p.numBanks; ++b)
            remappers.emplace_back(p.rowsPerBank(), p.startGapPeriod);
        rowWear = std::make_unique<RowWearTable>(
            p.numBanks, p.rowsPerBank() + 1);
    }
}

NvmLocation
NvmDevice::decode(Addr addr) const
{
    const std::uint64_t line = (addr / lineBytes) %
        (p.capacityBytes / lineBytes);
    const unsigned lpr = p.linesPerRow();
    NvmLocation loc;
    loc.lineInRow = static_cast<unsigned>(line % lpr);
    const std::uint64_t rowGlobal = line / lpr;
    loc.bank = static_cast<unsigned>(rowGlobal % p.numBanks);
    loc.row = rowGlobal / p.numBanks;
    return loc;
}

Tick
NvmDevice::readAccessLatency(unsigned bankIdx, bool rowHit,
                             bool fastActivate) const
{
    Tick lat;
    if (rowHit) {
        lat = p.tCAS;
    } else {
        const Tick activate = fastActivate ? p.tRCDFast : p.tRCD;
        lat = activate + p.tCAS;
    }
    const Bank &b = bank(bankIdx);
    if (b.latencyFactor != 1.0) {
        // Fault-injected degradation: the array is slower than the
        // timing parameters claim.
        lat = std::max<Tick>(
            1, static_cast<Tick>(static_cast<double>(lat) *
                                 b.latencyFactor));
    }
    return lat;
}

Tick
NvmDevice::accessRead(unsigned bankIdx, bool rowHit, bool fastActivate,
                      std::uint64_t reqId, Tick start)
{
    const Tick lat = readAccessLatency(bankIdx, rowHit, fastActivate);
    if (spans)
        spans->stageMark(reqId, SpanStage::Device, start, start + lat);
    return lat;
}

Bank &
NvmDevice::bank(unsigned idx)
{
    if (idx >= banks.size())
        mct_panic("bank index out of range: ", idx);
    return banks[idx];
}

const Bank &
NvmDevice::bank(unsigned idx) const
{
    if (idx >= banks.size())
        mct_panic("bank index out of range: ", idx);
    return banks[idx];
}

void
NvmDevice::setBankDegradation(int bankIdx, double latencyFactor,
                              double wearFactor)
{
    auto clamp = [](double f) {
        if (!(f > 0.0) || !std::isfinite(f))
            return 1.0;
        return std::min(std::max(f, 0.1), 100.0);
    };
    const double latF = clamp(latencyFactor);
    const double wearF = clamp(wearFactor);
    if (bankIdx < 0) {
        for (auto &b : banks) {
            b.latencyFactor = latF;
            b.wearFactor = wearF;
        }
        return;
    }
    if (static_cast<std::size_t>(bankIdx) >= banks.size())
        return; // plans may target banks a smaller device lacks
    banks[bankIdx].latencyFactor = latF;
    banks[bankIdx].wearFactor = wearF;
}

void
NvmDevice::clearDegradation()
{
    for (auto &b : banks) {
        b.latencyFactor = 1.0;
        b.wearFactor = 1.0;
    }
}

void
NvmDevice::addWear(unsigned bankIdx, std::uint64_t logicalRow,
                   double wear)
{
    // Degraded cells wear faster than the controller's nominal model.
    wear *= bank(bankIdx).wearFactor;
    bank(bankIdx).wear += wear;
    wearTotal += wear;
    if (p.wearLevelMode != WearLevelMode::StartGap)
        return;
    StartGap &sg = remappers[bankIdx];
    rowWear->add(bankIdx, sg.mapRow(logicalRow), wear);
    const std::int64_t filled = sg.onWrite();
    if (filled >= 0) {
        // Gap movement copies one full row with normal writes.
        const double copyWear = static_cast<double>(p.linesPerRow());
        rowWear->add(bankIdx, static_cast<std::uint64_t>(filled),
                     copyWear);
        bank(bankIdx).wear += copyWear;
        wearTotal += copyWear;
    }
}

double
NvmDevice::levelingEfficiency() const
{
    if (p.wearLevelMode != WearLevelMode::StartGap)
        return 1.0;
    return rowWear->levelingEfficiency();
}

double
NvmDevice::maxRowWear() const
{
    if (p.wearLevelMode != WearLevelMode::StartGap)
        mct_panic("maxRowWear() without Start-Gap mode");
    return rowWear->maxRowWear();
}

const StartGap &
NvmDevice::startGap(unsigned bankIdx) const
{
    if (p.wearLevelMode != WearLevelMode::StartGap)
        mct_panic("startGap() without Start-Gap mode");
    if (bankIdx >= remappers.size())
        mct_panic("startGap: bank out of range");
    return remappers[bankIdx];
}

double
NvmDevice::maxBankWear() const
{
    double worst = 0.0;
    for (const auto &b : banks)
        worst = std::max(worst, b.wear);
    return worst;
}

double
NvmDevice::lifetimeYears(Tick elapsedTicks) const
{
    if (elapsedTicks == 0)
        return p.maxLifetimeYears;
    const double elapsedSec = static_cast<double>(elapsedTicks) /
        static_cast<double>(tickSec);
    double years;
    if (p.wearLevelMode == WearLevelMode::StartGap) {
        // Explicit leveling: the device dies when its most-worn
        // physical row does; no assumed-efficiency credit.
        const double worstRow = rowWear->maxRowWear();
        if (worstRow <= 0.0)
            return p.maxLifetimeYears;
        years = p.rowWearCapacity() / (worstRow / elapsedSec) /
                secondsPerYear;
    } else {
        const double worst = maxBankWear();
        if (worst <= 0.0)
            return p.maxLifetimeYears;
        years = p.bankWearCapacity() / (worst / elapsedSec) /
                secondsPerYear;
    }
    return std::min(years, p.maxLifetimeYears);
}

void
NvmDevice::reset()
{
    for (auto &b : banks)
        b = Bank();
    wearTotal = 0.0;
    if (p.wearLevelMode == WearLevelMode::StartGap) {
        remappers.clear();
        for (unsigned b = 0; b < p.numBanks; ++b)
            remappers.emplace_back(p.rowsPerBank(), p.startGapPeriod);
        rowWear = std::make_unique<RowWearTable>(
            p.numBanks, p.rowsPerBank() + 1);
    }
}

void
NvmDevice::registerStats(StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addGauge(prefix + ".total_wear", [this] { return wearTotal; },
                 "fast-write-equivalent line writes, all banks");
    reg.addGauge(prefix + ".max_bank_wear",
                 [this] { return maxBankWear(); });
    reg.addGauge(prefix + ".leveling_efficiency",
                 [this] { return levelingEfficiency(); });
    for (unsigned b = 0; b < p.numBanks; ++b) {
        char suffix[16];
        std::snprintf(suffix, sizeof(suffix), ".bank%02u", b);
        const std::string bankPath = prefix + suffix;
        const Bank *bank = &banks[b];
        reg.addCounter(bankPath + ".reads",
                       [bank] { return bank->reads; });
        reg.addCounter(bankPath + ".writes",
                       [bank] { return bank->writes; });
        reg.addGauge(bankPath + ".wear", [bank] { return bank->wear; });
    }
}

void
NvmDevice::serialize(Serializer &s) const
{
    s.putU32(static_cast<std::uint32_t>(banks.size()));
    for (const Bank &b : banks)
        b.serialize(s);
    s.putF64(wearTotal);
    s.putU32(static_cast<std::uint32_t>(remappers.size()));
    for (const StartGap &sg : remappers)
        sg.serialize(s);
    s.putBool(rowWear != nullptr);
    if (rowWear)
        rowWear->serialize(s);
}

void
NvmDevice::deserialize(Deserializer &d)
{
    if (d.getU32() != banks.size())
        mct_panic("checkpoint device bank-count mismatch");
    for (Bank &b : banks)
        b.deserialize(d);
    wearTotal = d.getF64();
    if (d.getU32() != remappers.size())
        mct_panic("checkpoint device remapper-count mismatch");
    for (StartGap &sg : remappers)
        sg.deserialize(d);
    const bool hasRowWear = d.getBool();
    if (hasRowWear != (rowWear != nullptr))
        mct_panic("checkpoint device wear-level mode mismatch");
    if (rowWear)
        rowWear->deserialize(d);
}

} // namespace mct
