/**
 * @file
 * The NVM device: address decoding, bank array, wear bookkeeping, and
 * lifetime computation under the paper's cyclic-execution assumption.
 */

#ifndef MCT_NVM_DEVICE_HH
#define MCT_NVM_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "nvm/bank.hh"
#include "nvm/nvm_params.hh"
#include "nvm/start_gap.hh"

namespace mct
{

class StatRegistry;
class SpanTrace;
class Serializer;
class Deserializer;

/** Decoded physical location of a cache-line address. */
struct NvmLocation
{
    unsigned bank;
    std::uint64_t row;
    unsigned lineInRow;
};

/**
 * The NVM main-memory device.
 *
 * Address mapping places consecutive cache lines in the same row
 * (preserving stream row-buffer locality) and interleaves rows across
 * banks, which spreads wear under the bank-granularity wear-leveling
 * assumption of Table 9.
 */
class NvmDevice
{
  public:
    /** Construct with validated parameters. */
    explicit NvmDevice(const NvmParams &params);

    /** Device parameters. */
    const NvmParams &params() const { return p; }

    /** Decode a byte address into bank/row/line coordinates. */
    NvmLocation decode(Addr addr) const;

    /**
     * Array access latency of a read on @p bankIdx: tCAS on a row
     * hit, activate (tRCD or tRCDFast) + tCAS otherwise, scaled by
     * the bank's fault-injected latencyFactor. Excludes the burst
     * transfer, which belongs to the channel.
     */
    Tick readAccessLatency(unsigned bankIdx, bool rowHit,
                           bool fastActivate) const;

    /**
     * readAccessLatency plus span bookkeeping: marks the Device stage
     * [start, start + latency] on request @p reqId's span (if one is
     * open). The controller owns queueing and bank occupancy; the
     * device owns (and attributes) the array time.
     */
    Tick accessRead(unsigned bankIdx, bool rowHit, bool fastActivate,
                    std::uint64_t reqId, Tick start);

    /** Record Device-stage marks on sampled request spans. */
    void attachSpans(SpanTrace *t) { spans = t; }

    /** Mutable access to a bank's state. */
    Bank &bank(unsigned idx);

    /** Read-only access to a bank's state. */
    const Bank &bank(unsigned idx) const;

    /** Number of banks. */
    unsigned numBanks() const { return p.numBanks; }

    /**
     * Record wear from a write to @p logicalRow of @p bank
     * (fast-write-equivalent units). This is the only sanctioned
     * mutation path for wear; it keeps the cached device total
     * consistent, and under Start-Gap it remaps the row, tracks
     * per-physical-row wear, and charges gap-movement copies.
     */
    void addWear(unsigned bank, std::uint64_t logicalRow, double wear);

    /**
     * Fault-injection hook: set a bank's degradation multipliers
     * (latency and wear; 1.0 = healthy). @p bank of -1 targets every
     * bank. Values are clamped to a sane range so a corrupt plan
     * cannot freeze the simulation.
     */
    void setBankDegradation(int bank, double latencyFactor,
                            double wearFactor);

    /** Clear all degradation multipliers back to healthy. */
    void clearDegradation();

    /** Total wear across all banks (O(1), maintained by addWear). */
    double totalWear() const { return wearTotal; }

    /** Largest per-bank wear. */
    double maxBankWear() const;

    /**
     * Expected memory lifetime in years if the observed per-bank wear,
     * accumulated over elapsedTicks of execution, repeats cyclically
     * until the most-worn bank reaches its wear capacity (paper
     * Section 6.1). Returns params().maxLifetimeYears when no wear was
     * recorded.
     */
    double lifetimeYears(Tick elapsedTicks) const;

    /** Reset transient bank state and wear counters. */
    void reset();

    /** Register device and per-bank counters under @p prefix
     *  (e.g. "nvm" gives nvm.total_wear, nvm.bank00.reads, ...). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Measured Start-Gap leveling efficiency (1.0 under the
     *  assumed-efficiency mode, which levels by definition). */
    double levelingEfficiency() const;

    /** Most-worn physical row's wear (Start-Gap mode only). */
    double maxRowWear() const;

    /** The Start-Gap remapper of @p bank (Start-Gap mode only). */
    const StartGap &startGap(unsigned bank) const;

    /** Checkpoint bank state, wear totals, and remapping tables. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize() (same geometry). */
    void deserialize(Deserializer &d);

  private:
    NvmParams p;
    std::vector<Bank> banks;
    SpanTrace *spans = nullptr;
    double wearTotal = 0.0;
    std::vector<StartGap> remappers;           // StartGap mode
    std::unique_ptr<RowWearTable> rowWear;     // StartGap mode
};

} // namespace mct

#endif // MCT_NVM_DEVICE_HH
