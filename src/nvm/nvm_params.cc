#include "nvm/nvm_params.hh"

#include "common/logging.hh"

namespace mct
{

void
NvmParams::validate() const
{
    if (numBanks == 0)
        mct_fatal("NvmParams: numBanks must be positive");
    if (rowBytes % lineBytes != 0)
        mct_fatal("NvmParams: rowBytes must be a multiple of the line");
    if (capacityBytes % (static_cast<std::uint64_t>(numBanks) * rowBytes))
        mct_fatal("NvmParams: capacity not divisible into bank rows");
    if (enduranceBase <= 0.0)
        mct_fatal("NvmParams: enduranceBase must be positive");
    if (wearLevelEff <= 0.0 || wearLevelEff > 1.0)
        mct_fatal("NvmParams: wearLevelEff must be in (0, 1]");
    if (tWPBase == 0)
        mct_fatal("NvmParams: tWPBase must be positive");
}

} // namespace mct
