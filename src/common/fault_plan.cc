#include "common/fault_plan.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/json.hh"

namespace mct
{

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LatencyDrift:     return "latency_drift";
      case FaultKind::BankDegrade:      return "bank_degrade";
      case FaultKind::CounterCorrupt:   return "counter_corrupt";
      case FaultKind::PredictorGarbage: return "predictor_garbage";
      case FaultKind::SweepCacheCorrupt:return "sweep_corrupt";
      case FaultKind::WearClockSkew:    return "clock_skew";
      case FaultKind::CkptCorrupt:      return "ckpt_corrupt";
    }
    return "?";
}

bool
FaultPlan::has(FaultKind kind) const
{
    for (const auto &s : specs)
        if (s.kind == kind)
            return true;
    return false;
}

std::string
FaultPlan::summary() const
{
    std::ostringstream out;
    bool firstSpec = true;
    for (const auto &s : specs) {
        if (!firstSpec)
            out << ';';
        firstSpec = false;
        out << toString(s.kind);
        if (s.startInst != 0 || s.durationInsts != 0) {
            out << '@' << s.startInst;
            if (s.durationInsts != 0)
                out << '+' << s.durationInsts;
        }
        std::vector<std::string> kvs;
        if (s.magnitude != FaultSpec().magnitude)
            kvs.push_back("mag=" + jsonNumber(s.magnitude));
        if (s.prob != FaultSpec().prob)
            kvs.push_back("prob=" + jsonNumber(s.prob));
        if (s.bank != FaultSpec().bank)
            kvs.push_back("bank=" + std::to_string(s.bank));
        for (std::size_t i = 0; i < kvs.size(); ++i)
            out << (i == 0 ? ':' : ',') << kvs[i];
    }
    return out.str();
}

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
kindFromString(const std::string &name, FaultKind &out)
{
    for (std::size_t i = 0; i < numFaultKinds; ++i) {
        const auto kind = static_cast<FaultKind>(i);
        if (name == toString(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

/** Parse a double with full-token consumption; false on junk. */
bool
parseNumber(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size())
        return false;
    out = v;
    return true;
}

/** Instruction count with optional k/m/g suffix ("500k", "1.5m"). */
bool
parseInsts(std::string tok, InstCount &out)
{
    double scale = 1.0;
    if (!tok.empty()) {
        switch (std::tolower(static_cast<unsigned char>(tok.back()))) {
          case 'k': scale = 1e3; tok.pop_back(); break;
          case 'm': scale = 1e6; tok.pop_back(); break;
          case 'g': scale = 1e9; tok.pop_back(); break;
        }
    }
    double v = 0.0;
    if (!parseNumber(tok, v) || !std::isfinite(v) || v < 0)
        return false;
    out = static_cast<InstCount>(v * scale);
    return true;
}

/** Parse one spec segment; returns an error string, empty on success. */
std::string
parseSpec(const std::string &segment, FaultSpec &spec)
{
    std::string head = segment;
    std::string params;
    if (const auto colon = segment.find(':'); colon != std::string::npos) {
        head = segment.substr(0, colon);
        params = segment.substr(colon + 1);
    }

    std::string kindTok = head;
    std::string window;
    if (const auto at = head.find('@'); at != std::string::npos) {
        kindTok = head.substr(0, at);
        window = head.substr(at + 1);
    }

    kindTok = trim(kindTok);
    if (!kindFromString(kindTok, spec.kind))
        return "unknown fault kind '" + kindTok + "'";

    if (const auto at = head.find('@'); at != std::string::npos) {
        std::string startTok = trim(window);
        std::string durTok;
        if (const auto plus = window.find('+'); plus != std::string::npos) {
            startTok = trim(window.substr(0, plus));
            durTok = trim(window.substr(plus + 1));
        }
        if (!parseInsts(startTok, spec.startInst))
            return "bad start instruction '" + startTok + "'";
        if (!durTok.empty() && !parseInsts(durTok, spec.durationInsts))
            return "bad duration '" + durTok + "'";
    }

    std::stringstream kvStream(params);
    std::string kv;
    while (std::getline(kvStream, kv, ',')) {
        kv = trim(kv);
        if (kv.empty())
            continue;
        const auto eq = kv.find('=');
        if (eq == std::string::npos)
            return "parameter '" + kv + "' is not key=value";
        const std::string key = trim(kv.substr(0, eq));
        const std::string val = trim(kv.substr(eq + 1));
        double num = 0.0;
        if (!parseNumber(val, num))
            return "bad value '" + val + "' for '" + key + "'";
        if (key == "mag") {
            if (!std::isfinite(num) || num <= 0)
                return "mag must be finite and > 0, got '" + val + "'";
            spec.magnitude = num;
        } else if (key == "prob") {
            if (!(num >= 0.0 && num <= 1.0))
                return "prob must be in [0, 1], got '" + val + "'";
            spec.prob = num;
        } else if (key == "bank") {
            if (num != std::floor(num) || num < -1)
                return "bank must be an integer >= -1, got '" + val + "'";
            spec.bank = static_cast<int>(num);
        } else {
            return "unknown parameter '" + key + "'";
        }
    }
    return "";
}

struct BuiltinPlan
{
    const char *name;
    const char *text;
};

/**
 * The built-in scenarios CI exercises. Windows are sized for a few
 * million instructions of simulation: faults arm after the controller
 * has started working and clear before the run ends, so recovery is
 * observable.
 */
const BuiltinPlan builtinPlans[] = {
    {"drift", "latency_drift@300k+900k:mag=3"},
    {"degrade", "bank_degrade@200k+1200k:mag=4,bank=1"},
    {"counters", "counter_corrupt@0+1800k:prob=0.25,mag=1e6"},
    {"garbage", "predictor_garbage@0+1800k:prob=0.5,mag=50"},
    {"skew", "clock_skew@250k+900k:mag=8"},
    {"corrupt-cache", "sweep_corrupt"},
    {"corrupt-ckpt", "ckpt_corrupt"},
    {"storm",
     "latency_drift@200k+600k:mag=2.5;"
     "bank_degrade@400k+800k:mag=3,bank=0;"
     "counter_corrupt@100k+1400k:prob=0.2,mag=1e9;"
     "predictor_garbage@300k+1200k:prob=0.35,mag=40;"
     "clock_skew@500k+700k:mag=6;"
     "sweep_corrupt"},
};

} // namespace

const std::vector<std::string> &
builtinFaultPlanNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &p : builtinPlans)
            v.push_back(p.name);
        return v;
    }();
    return names;
}

std::string
builtinFaultPlanText(const std::string &name)
{
    for (const auto &p : builtinPlans)
        if (name == p.name)
            return p.text;
    return "";
}

FaultPlanParse
parseFaultPlan(const std::string &text)
{
    FaultPlanParse result;

    std::string body = trim(text);
    if (const auto builtin = builtinFaultPlanText(body); !builtin.empty())
        body = builtin;

    if (body.empty()) {
        result.error = "empty fault plan";
        return result;
    }

    std::stringstream segments(body);
    std::string segment;
    while (std::getline(segments, segment, ';')) {
        segment = trim(segment);
        if (segment.empty())
            continue;
        FaultSpec spec;
        if (const auto err = parseSpec(segment, spec); !err.empty()) {
            result.error = err;
            result.plan.specs.clear();
            return result;
        }
        result.plan.specs.push_back(spec);
    }

    if (result.plan.specs.empty()) {
        result.error = "fault plan has no specs";
        return result;
    }
    result.ok = true;
    return result;
}

} // namespace mct
