/**
 * @file
 * Plain-text table rendering for the benchmark harness, so every bench
 * binary can print paper-style tables with aligned columns.
 */

#ifndef MCT_COMMON_TABLE_HH
#define MCT_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace mct
{

/**
 * Column-aligned text table. Add a header row once, then data rows;
 * print() computes column widths and renders with a separator rule.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (string cells, pre-formatted). */
    void row(std::vector<std::string> cells);

    /** Render to the stream (the harness decides where output goes;
     *  library code never writes to stdout on its own). */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

/** Format a double with the given precision (fixed notation). */
std::string fmt(double v, int precision = 3);

/** Format a boolean as "True"/"False" like the paper's tables. */
std::string fmtBool(bool v);

/** Format "N/A" when the guard is false, else the value. */
std::string fmtOrNa(bool guard, double v, int precision = 1);

} // namespace mct

#endif // MCT_COMMON_TABLE_HH
