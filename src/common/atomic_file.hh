/**
 * @file
 * Atomic file publication: content is staged to `path.tmp`, flushed
 * to stable storage, and renamed over the target in one step, so a
 * reader never observes a torn or half-written file and a crash mid
 * write leaves the previous version intact. Every emitter (stats /
 * spans / provenance JSON, sweep-cache CSV, bench reports,
 * checkpoints) publishes through this helper.
 */

#ifndef MCT_COMMON_ATOMIC_FILE_HH
#define MCT_COMMON_ATOMIC_FILE_HH

#include <sstream>
#include <string>
#include <string_view>

namespace mct
{

/**
 * Write @p content to @p path atomically (stage, flush+fsync,
 * rename). Returns false and cleans up the staging file on any
 * failure; the target is either fully replaced or untouched.
 */
[[nodiscard]] bool writeFileAtomic(const std::string &path,
                                   std::string_view content);

/**
 * Stream-style wrapper over writeFileAtomic for emitters built around
 * std::ostream. Content accumulates in memory and reaches the target
 * path only on commit(); destruction without commit discards it.
 */
class AtomicFile
{
  public:
    explicit AtomicFile(std::string path) : target(std::move(path)) {}

    /** The in-memory staging stream. */
    std::ostream &stream() { return os; }

    /** Publish the staged content; false leaves the target untouched. */
    [[nodiscard]] bool commit();

    const std::string &path() const { return target; }

  private:
    std::string target;
    std::ostringstream os;
    bool committed = false;
};

} // namespace mct

#endif // MCT_COMMON_ATOMIC_FILE_HH
