#include "common/manifest.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hh"
#include "common/serialize.hh"

namespace mct
{

namespace
{

// Key contract of the mct-manifest-v1 document. The doc-contract
// lint cross-checks these spellings against docs/observability.md,
// and the manifest tests assert the writer below emits exactly them.
// mct-lint:doc-keys:begin
const char *const kManifestKeys[] = {
    "schema",
    "run_id",
    "mode",
    "app",
    "config",
    "seed",
    "fault_plan",
    "fingerprint",
    "artifacts",
    "artifacts[].kind",
    "artifacts[].schema",
    "artifacts[].path",
    "artifacts[].bytes",
    "artifacts[].fnv1a",
};
// mct-lint:doc-keys:end

} // namespace

bool
checksumFile(const std::string &path, std::uint64_t &checksum,
             std::uint64_t &bytes)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string content = ss.str();
    checksum = fnv1a(content.data(), content.size());
    bytes = content.size();
    return true;
}

std::string
checksumHex(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

std::string
manifestRunId(const std::string &fingerprint)
{
    return checksumHex(fnv1a(fingerprint.data(), fingerprint.size()));
}

std::string
manifestRelative(const std::string &manifestPath,
                 const std::string &artifactPath)
{
    const std::size_t slash = manifestPath.find_last_of('/');
    if (slash == std::string::npos)
        return artifactPath;
    const std::string dir = manifestPath.substr(0, slash + 1);
    if (artifactPath.compare(0, dir.size(), dir) == 0)
        return artifactPath.substr(dir.size());
    return artifactPath;
}

void
writeManifestJson(std::ostream &os, const RunManifest &m)
{
    std::vector<const ManifestArtifact *> order;
    order.reserve(m.artifacts.size());
    for (const ManifestArtifact &a : m.artifacts)
        order.push_back(&a);
    std::sort(order.begin(), order.end(),
              [](const ManifestArtifact *a, const ManifestArtifact *b) {
                  return a->path < b->path;
              });

    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "mct-manifest-v1");
    w.kv("run_id", m.runId);
    w.kv("mode", m.mode);
    w.kv("app", m.app);
    w.kv("config", m.config);
    w.kv("seed", m.seed);
    w.kv("fault_plan", m.faultPlan);
    w.kv("fingerprint", m.fingerprint);
    w.key("artifacts").beginArray();
    for (const ManifestArtifact *a : order) {
        w.beginObject();
        w.kv("kind", a->kind);
        w.kv("schema", a->schema);
        w.kv("path", a->path);
        w.kv("bytes", a->bytes);
        w.kv("fnv1a", checksumHex(a->checksum));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

const std::vector<std::string> &
manifestDocKeys()
{
    static const std::vector<std::string> keys(
        std::begin(kManifestKeys), std::end(kManifestKeys));
    return keys;
}

} // namespace mct
