#include "common/instrument.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

// --------------------------------------------------------------------
// LogHistogram
// --------------------------------------------------------------------

void
LogHistogram::record(double v)
{
    std::size_t idx = 0;
    if (v >= 1.0) {
        idx = 1 + static_cast<std::size_t>(std::floor(std::log2(v)));
        idx = std::min(idx, numBuckets - 1);
    }
    ++buckets_[idx];
    ++n;
    total += std::max(v, 0.0);
}

double
LogHistogram::bucketLow(std::size_t i)
{
    return i == 0 ? 0.0 : std::pow(2.0, static_cast<double>(i - 1));
}

double
LogHistogram::percentile(double p) const
{
    if (n == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // Target rank in (0, n]; rank r falls in the bucket holding the
    // r-th smallest observation, placed uniformly within its bounds.
    const double target = p * static_cast<double>(n);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        cum += buckets_[i];
        if (static_cast<double>(cum) >= target) {
            const double lo = bucketLow(i);
            const double hi =
                i + 1 < numBuckets ? bucketLow(i + 1) : lo * 2.0;
            const double into =
                target - static_cast<double>(cum - buckets_[i]);
            const double frac = std::clamp(
                into / static_cast<double>(buckets_[i]), 0.0, 1.0);
            return lo + (hi - lo) * frac;
        }
    }
    // Unreachable when counts are consistent; fall back to the top.
    return bucketLow(numBuckets - 1) * 2.0;
}

void
LogHistogram::reset()
{
    buckets_.fill(0);
    n = 0;
    total = 0.0;
}

// --------------------------------------------------------------------
// StatRegistry
// --------------------------------------------------------------------

StatRegistry::Entry &
StatRegistry::insert(const std::string &path, const std::string &desc)
{
    auto [it, isNew] = entries.try_emplace(path);
    if (isNew)
        order.push_back(path);
    it->second = Entry{};
    it->second.desc = desc;
    return it->second;
}

void
StatRegistry::addCounter(const std::string &path, CounterFn fn,
                         const std::string &desc)
{
    Entry &e = insert(path, desc);
    e.kind = StatKind::Counter;
    e.counter = std::move(fn);
}

void
StatRegistry::addGauge(const std::string &path, GaugeFn fn,
                       const std::string &desc)
{
    Entry &e = insert(path, desc);
    e.kind = StatKind::Gauge;
    e.gauge = std::move(fn);
}

std::uint64_t &
StatRegistry::addCounterCell(const std::string &path,
                             const std::string &desc)
{
    Entry &e = insert(path, desc);
    e.kind = StatKind::Counter;
    e.cell = std::make_unique<std::uint64_t>(0);
    std::uint64_t *cell = e.cell.get();
    e.counter = [cell] { return *cell; };
    return *cell;
}

LogHistogram &
StatRegistry::addHistogram(const std::string &path,
                           const std::string &desc)
{
    Entry &e = insert(path, desc);
    e.kind = StatKind::Histogram;
    e.hist = std::make_unique<LogHistogram>();
    return *e.hist;
}

void
StatRegistry::markHost(const std::string &path)
{
    const auto it = entries.find(path);
    if (it == entries.end())
        mct_panic("markHost on unregistered stat '", path, "'");
    it->second.host = true;
}

bool
StatRegistry::isHost(const std::string &path) const
{
    const auto it = entries.find(path);
    return it != entries.end() && it->second.host;
}

bool
StatRegistry::has(const std::string &path) const
{
    return entries.count(path) > 0;
}

std::string
StatRegistry::description(const std::string &path) const
{
    const auto it = entries.find(path);
    return it == entries.end() ? std::string() : it->second.desc;
}

std::vector<std::string>
StatRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[path, e] : entries)
        out.push_back(path);
    return out;
}

double
StatRegistry::value(const std::string &path) const
{
    const auto it = entries.find(path);
    if (it == entries.end())
        return 0.0;
    const Entry &e = it->second;
    switch (e.kind) {
      case StatKind::Counter:
        return static_cast<double>(e.counter());
      case StatKind::Gauge:
        return e.gauge();
      case StatKind::Histogram:
        return e.hist->sum();
    }
    return 0.0;
}

StatSnapshot
StatRegistry::snapshot(StatScope scope) const
{
    StatSnapshot snap;
    for (const auto &[path, e] : entries) {
        if (scope == StatScope::Sim && e.host)
            continue;
        if (scope == StatScope::Host && !e.host)
            continue;
        StatValue v;
        v.kind = e.kind;
        switch (e.kind) {
          case StatKind::Counter:
            v.num = static_cast<double>(e.counter());
            break;
          case StatKind::Gauge:
            v.num = e.gauge();
            break;
          case StatKind::Histogram: {
            v.num = e.hist->sum();
            v.count = e.hist->count();
            const auto &b = e.hist->buckets();
            std::size_t last = b.size();
            while (last > 0 && b[last - 1] == 0)
                --last;
            v.buckets.assign(b.begin(), b.begin() + last);
            break;
          }
        }
        snap.emplace(path, std::move(v));
    }
    return snap;
}

StatSnapshot
StatRegistry::delta(const StatSnapshot &from, const StatSnapshot &to)
{
    StatSnapshot out;
    for (const auto &[path, newer] : to) {
        StatValue d = newer;
        const auto it = from.find(path);
        if (it != from.end() && newer.kind != StatKind::Gauge) {
            const StatValue &older = it->second;
            d.num -= older.num;
            d.count -= older.count;
            for (std::size_t i = 0;
                 i < d.buckets.size() && i < older.buckets.size(); ++i)
                d.buckets[i] -= older.buckets[i];
            while (!d.buckets.empty() && d.buckets.back() == 0)
                d.buckets.pop_back();
        }
        out.emplace(path, std::move(d));
    }
    return out;
}

void
writeSnapshotJson(std::ostream &os, const StatSnapshot &snap)
{
    JsonWriter w(os);
    writeSnapshot(w, snap);
}

void
writeSnapshot(JsonWriter &w, const StatSnapshot &snap)
{
    w.beginObject();
    for (const auto &[path, v] : snap) {
        if (v.kind == StatKind::Histogram) {
            w.key(path).beginObject();
            w.kv("count", v.count);
            w.kv("sum", v.num);
            w.kv("mean",
                 v.count ? v.num / static_cast<double>(v.count) : 0.0);
            w.key("buckets").beginArray();
            for (std::size_t i = 0; i < v.buckets.size(); ++i) {
                if (v.buckets[i] == 0)
                    continue;
                w.beginArray()
                    .value(LogHistogram::bucketLow(i))
                    .value(v.buckets[i])
                    .endArray();
            }
            w.endArray();
            w.endObject();
        } else {
            w.kv(path, v.num);
        }
    }
    w.endObject();
}

// --------------------------------------------------------------------
// EventTrace
// --------------------------------------------------------------------

const char *
toString(TraceEventType type)
{
    switch (type) {
      case TraceEventType::PhaseChange:
        return "phase_change";
      case TraceEventType::SamplingRoundStart:
        return "sampling_round_start";
      case TraceEventType::SamplingRoundEnd:
        return "sampling_round_end";
      case TraceEventType::PredictionMade:
        return "prediction_made";
      case TraceEventType::ConfigApplied:
        return "config_applied";
      case TraceEventType::QuotaThrottle:
        return "quota_throttle";
      case TraceEventType::HealthCheckPass:
        return "health_check_pass";
      case TraceEventType::HealthCheckFallback:
        return "health_check_fallback";
      case TraceEventType::WritebackBurst:
        return "writeback_burst";
      case TraceEventType::FaultInjected:
        return "fault_injected";
      case TraceEventType::RecoveryAction:
        return "recovery_action";
      case TraceEventType::SpanComplete:
        return "span_complete";
      case TraceEventType::DecisionProvenance:
        return "decision_provenance";
      case TraceEventType::AlertRaised:
        return "alert_raised";
      case TraceEventType::AlertCleared:
        return "alert_cleared";
    }
    return "unknown";
}

std::array<const char *, 3>
traceArgNames(TraceEventType type)
{
    switch (type) {
      case TraceEventType::PhaseChange:
        return {"score", "windows", "workload_mean"};
      case TraceEventType::SamplingRoundStart:
        return {"round", "samples", "unit_insts"};
      case TraceEventType::SamplingRoundEnd:
        return {"round", "insts_used", "baseline_ipc"};
      case TraceEventType::PredictionMade:
        return {"pred_ipc", "pred_lifetime_years", "feasible"};
      case TraceEventType::ConfigApplied:
        return {"slow_latency", "wear_quota", "cancellation"};
      case TraceEventType::QuotaThrottle:
        return {"restricted", "restricted_slices", "budget_rate"};
      case TraceEventType::HealthCheckPass:
        return {"chosen_ipc", "baseline_ipc", "bad_checks"};
      case TraceEventType::HealthCheckFallback:
        return {"chosen_ipc", "baseline_ipc", "fallbacks"};
      case TraceEventType::WritebackBurst:
        return {"active", "writeq_level", "drains"};
      case TraceEventType::FaultInjected:
        return {"kind", "active", "magnitude"};
      case TraceEventType::RecoveryAction:
        return {"step", "ladder_level", "detail"};
      case TraceEventType::SpanComplete:
        return {"total_ns", "hit_level", "stages"};
      case TraceEventType::DecisionProvenance:
        return {"seq", "err_ipc", "regret"};
      case TraceEventType::AlertRaised:
        return {"rule", "severity", "value"};
      case TraceEventType::AlertCleared:
        return {"rule", "severity", "windows_active"};
    }
    return {"a0", "a1", "a2"};
}

void
EventTrace::enable(std::size_t capacity)
{
    if (capacity == 0)
        mct_fatal("EventTrace::enable requires a nonzero capacity");
    ring.assign(capacity, TraceEvent{});
    cap = capacity;
    head = 0;
    held = 0;
    total = 0;
}

void
EventTrace::disable()
{
    ring.clear();
    ring.shrink_to_fit();
    cap = 0;
    head = 0;
    held = 0;
    total = 0;
}

void
EventTrace::push(TraceEventType type, double a0, double a1, double a2)
{
    TraceEvent &e = ring[head];
    e.type = type;
    e.inst = clock ? *clock : 0;
    e.args = {a0, a1, a2};
    head = head + 1 == cap ? 0 : head + 1;
    held = std::min(held + 1, cap);
    ++total;
}

std::vector<TraceEvent>
EventTrace::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(held);
    // Oldest event sits at head when the ring has wrapped.
    const std::size_t start = held == cap ? head : 0;
    for (std::size_t i = 0; i < held; ++i)
        out.push_back(ring[(start + i) % (cap ? cap : 1)]);
    return out;
}

std::array<std::uint64_t, numTraceEventTypes>
EventTrace::countsByType() const
{
    std::array<std::uint64_t, numTraceEventTypes> counts{};
    const std::size_t start = held == cap ? head : 0;
    for (std::size_t i = 0; i < held; ++i) {
        const TraceEvent &e = ring[(start + i) % (cap ? cap : 1)];
        ++counts[static_cast<std::size_t>(e.type)];
    }
    return counts;
}

void
EventTrace::clear()
{
    head = 0;
    held = 0;
    total = 0;
}

void
EventTrace::writeJsonl(std::ostream &os) const
{
    for (const TraceEvent &e : events()) {
        JsonWriter w(os);
        const auto names = traceArgNames(e.type);
        w.beginObject();
        w.kv("ev", toString(e.type));
        w.kv("inst", static_cast<std::uint64_t>(e.inst));
        for (std::size_t a = 0; a < names.size(); ++a)
            w.kv(names[a], e.args[a]);
        w.endObject();
        os << '\n';
    }
}

void
EventTrace::writeChromeTrace(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();
    for (const TraceEvent &e : events()) {
        const auto names = traceArgNames(e.type);
        w.beginObject();
        const char *ph = "i";
        const char *name = toString(e.type);
        if (e.type == TraceEventType::SamplingRoundStart) {
            ph = "B";
            name = "sampling_round";
        } else if (e.type == TraceEventType::SamplingRoundEnd) {
            ph = "E";
            name = "sampling_round";
        }
        w.kv("name", name);
        w.kv("ph", ph);
        // ts nominally holds microseconds; we put the instruction
        // count there so the viewer's time axis reads instructions.
        w.kv("ts", static_cast<std::uint64_t>(e.inst));
        w.kv("pid", 0);
        w.kv("tid", 0);
        if (ph[0] == 'i')
            w.kv("s", "g"); // global-scope instant marker
        w.key("args").beginObject();
        for (std::size_t a = 0; a < names.size(); ++a)
            w.kv(names[a], e.args[a]);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

// --------------------------------------------------------------------
// SpanTrace
// --------------------------------------------------------------------

const char *
toString(SpanStage stage)
{
    switch (stage) {
      case SpanStage::L1:
        return "l1";
      case SpanStage::L2:
        return "l2";
      case SpanStage::Llc:
        return "llc";
      case SpanStage::Mshr:
        return "mshr";
      case SpanStage::CtrlQueue:
        return "queue";
      case SpanStage::Bank:
        return "bank";
      case SpanStage::Device:
        return "device";
    }
    return "unknown";
}

const char *
spanStageTrack(SpanStage stage)
{
    switch (stage) {
      case SpanStage::L1:
        return "cache.l1";
      case SpanStage::L2:
        return "cache.l2";
      case SpanStage::Llc:
        return "cache.llc";
      case SpanStage::Mshr:
        return "cpu.mshr";
      case SpanStage::CtrlQueue:
        return "memctrl.queue";
      case SpanStage::Bank:
        return "memctrl.bank";
      case SpanStage::Device:
        return "nvm.device";
    }
    return "unknown";
}

void
SpanTrace::enable(std::uint64_t sampleEvery, std::size_t capacity)
{
    if (sampleEvery == 0)
        mct_fatal("SpanTrace::enable requires a nonzero sample period");
    if (capacity == 0)
        mct_fatal("SpanTrace::enable requires a nonzero capacity");
    ring.assign(capacity, SpanRecord{});
    open.clear();
    every = sampleEvery;
    cap = capacity;
    head = 0;
    held = 0;
    total = 0;
    curValid = false;
}

void
SpanTrace::disable()
{
    ring.clear();
    ring.shrink_to_fit();
    open.clear();
    every = 0;
    cap = 0;
    head = 0;
    held = 0;
    total = 0;
    curValid = false;
}

void
SpanTrace::begin(std::uint64_t id, Addr addr, bool isWrite, Tick now)
{
    if (every == 0)
        return;
    curValid = false;
    if ((id & seqMask) % every != 0)
        return;
    OpenSpan &o = open[id];
    o.rec = SpanRecord{};
    o.rec.id = id;
    o.rec.addr = addr;
    o.rec.isWrite = isWrite;
    o.rec.inst = clock ? *clock : 0;
    o.rec.begin = now;
    o.openBits = 0;
    curId = id;
    curValid = true;
}

void
SpanTrace::probe(SpanStage stage, bool hit)
{
    if (every == 0 || !curValid)
        return;
    const auto it = open.find(curId);
    if (it == open.end())
        return;
    OpenSpan &o = it->second;
    const auto s = static_cast<std::size_t>(stage);
    o.rec.enter[s] = o.rec.begin;
    o.rec.exit[s] = o.rec.begin;
    o.rec.present |= static_cast<std::uint8_t>(1u << s);
    if (hit)
        o.openBits |= static_cast<std::uint8_t>(1u << s);
}

void
SpanTrace::stageEnter(std::uint64_t id, SpanStage stage, Tick now)
{
    if (every == 0)
        return;
    const auto it = open.find(id);
    if (it == open.end())
        return;
    OpenSpan &o = it->second;
    const auto s = static_cast<std::size_t>(stage);
    o.rec.enter[s] = now;
    o.rec.exit[s] = now;
    o.rec.present |= static_cast<std::uint8_t>(1u << s);
    o.openBits |= static_cast<std::uint8_t>(1u << s);
}

void
SpanTrace::stageMark(std::uint64_t id, SpanStage stage, Tick from,
                     Tick to)
{
    if (every == 0)
        return;
    const auto it = open.find(id);
    if (it == open.end())
        return;
    OpenSpan &o = it->second;
    const auto s = static_cast<std::size_t>(stage);
    o.rec.enter[s] = from;
    o.rec.exit[s] = to;
    o.rec.present |= static_cast<std::uint8_t>(1u << s);
    o.openBits &= static_cast<std::uint8_t>(~(1u << s));
}

void
SpanTrace::end(std::uint64_t id, Tick now, int hitLevel)
{
    if (every == 0)
        return;
    const auto it = open.find(id);
    if (it == open.end())
        return;
    OpenSpan &o = it->second;
    o.rec.end = now;
    o.rec.hitLevel = hitLevel;
    for (std::size_t s = 0; s < numSpanStages; ++s)
        if ((o.openBits >> s) & 1u)
            o.rec.exit[s] = now;
    int stages = 0;
    for (std::size_t s = 0; s < numSpanStages; ++s) {
        if (!((o.rec.present >> s) & 1u))
            continue;
        ++stages;
        if (stageHist[s])
            stageHist[s]->record(
                static_cast<double>(o.rec.exit[s] - o.rec.enter[s]) *
                nsPerTick);
    }
    if (totalHist)
        totalHist->record(
            static_cast<double>(o.rec.end - o.rec.begin) * nsPerTick);
    if (events_)
        events_->record(
            TraceEventType::SpanComplete,
            static_cast<double>(o.rec.end - o.rec.begin) * nsPerTick,
            static_cast<double>(hitLevel), static_cast<double>(stages));
    push(o.rec);
    open.erase(it);
    if (curValid && curId == id)
        curValid = false;
}

void
SpanTrace::push(const SpanRecord &rec)
{
    ring[head] = rec;
    head = head + 1 == cap ? 0 : head + 1;
    held = std::min(held + 1, cap);
    ++total;
}

std::vector<SpanRecord>
SpanTrace::spans() const
{
    std::vector<SpanRecord> out;
    out.reserve(held);
    const std::size_t start = held == cap ? head : 0;
    for (std::size_t i = 0; i < held; ++i)
        out.push_back(ring[(start + i) % (cap ? cap : 1)]);
    return out;
}

void
SpanTrace::clear()
{
    open.clear();
    head = 0;
    held = 0;
    total = 0;
    curValid = false;
}

void
SpanTrace::writeJsonl(std::ostream &os) const
{
    for (const SpanRecord &r : spans()) {
        JsonWriter w(os);
        w.beginObject();
        w.kv("id", r.id);
        w.kv("addr", static_cast<std::uint64_t>(r.addr));
        w.kv("write", static_cast<std::uint64_t>(r.isWrite ? 1 : 0));
        w.kv("hit_level", static_cast<std::uint64_t>(r.hitLevel));
        w.kv("inst", static_cast<std::uint64_t>(r.inst));
        w.kv("begin_ps", static_cast<std::uint64_t>(r.begin));
        w.kv("end_ps", static_cast<std::uint64_t>(r.end));
        w.key("stages").beginObject();
        for (std::size_t s = 0; s < numSpanStages; ++s) {
            if (!((r.present >> s) & 1u))
                continue;
            w.key(toString(static_cast<SpanStage>(s)))
                .beginArray()
                .value(static_cast<std::uint64_t>(r.enter[s]))
                .value(static_cast<std::uint64_t>(r.exit[s]))
                .endArray();
        }
        w.endObject();
        w.endObject();
        os << '\n';
    }
}

void
SpanTrace::writeChromeTrace(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();
    // Name one track per component so stages nest visually.
    for (std::size_t s = 0; s < numSpanStages; ++s) {
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::uint64_t>(s + 1));
        w.key("args").beginObject();
        w.kv("name", spanStageTrack(static_cast<SpanStage>(s)));
        w.endObject();
        w.endObject();
    }
    for (const SpanRecord &r : spans()) {
        for (std::size_t s = 0; s < numSpanStages; ++s) {
            if (!((r.present >> s) & 1u))
                continue;
            w.beginObject();
            w.kv("name", toString(static_cast<SpanStage>(s)));
            w.kv("ph", "X");
            // ts nominally holds microseconds; we put Ticks
            // (picoseconds) there, as EventTrace does instructions.
            w.kv("ts", static_cast<std::uint64_t>(r.enter[s]));
            w.kv("dur",
                 static_cast<std::uint64_t>(r.exit[s] - r.enter[s]));
            w.kv("pid", 1);
            w.kv("tid", static_cast<std::uint64_t>(s + 1));
            w.key("args").beginObject();
            w.kv("id", r.id);
            w.kv("addr", static_cast<std::uint64_t>(r.addr));
            w.kv("hit_level", static_cast<std::uint64_t>(r.hitLevel));
            w.endObject();
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

// --------------------------------------------------------------------
// ProvenanceTrace
// --------------------------------------------------------------------

const char *
provenanceObjectiveName(std::size_t i)
{
    switch (i) {
      case 0:
        return "ipc";
      case 1:
        return "lifetime";
      case 2:
        return "energy";
      default:
        return "unknown";
    }
}

std::size_t
closeProvenanceRecord(ProvenanceRecord &rec, double realizedIpc,
                      double realizedLifetimeYears,
                      double realizedEnergyJ, InstCount closeInst)
{
    const std::array<double, numProvenanceObjectives> real = {
        realizedIpc, realizedLifetimeYears, realizedEnergyJ};
    std::size_t invalid = 0;
    for (std::size_t i = 0; i < numProvenanceObjectives; ++i) {
        ProvenanceObjective &o = rec.objectives[i];
        o.realized = real[i];
        if (std::isfinite(real[i]) && std::abs(real[i]) > 1e-12 &&
            std::isfinite(o.predicted)) {
            o.relError =
                std::abs(o.predicted - real[i]) / std::abs(real[i]);
            o.errorValid = true;
        } else {
            o.relError = 0.0;
            o.errorValid = false;
            ++invalid;
        }
    }
    rec.regret = rec.bestSampledIpc > 0.0 &&
                         std::isfinite(realizedIpc)
                     ? rec.bestSampledIpc - realizedIpc
                     : 0.0;
    rec.closeInst = closeInst;
    rec.closed = true;
    return invalid;
}

void
ProvenanceTrace::enable(std::size_t capacity)
{
    if (capacity == 0)
        mct_fatal("ProvenanceTrace::enable requires a nonzero capacity");
    ring.assign(capacity, ProvenanceRecord{});
    cap = capacity;
    head = 0;
    held = 0;
    total = 0;
}

void
ProvenanceTrace::disable()
{
    ring.clear();
    ring.shrink_to_fit();
    cap = 0;
    head = 0;
    held = 0;
    total = 0;
}

void
ProvenanceTrace::record(const ProvenanceRecord &rec)
{
    if (cap == 0)
        return;
    ring[head] = rec;
    head = head + 1 == cap ? 0 : head + 1;
    held = std::min(held + 1, cap);
    ++total;
    if (events_)
        events_->record(TraceEventType::DecisionProvenance,
                        static_cast<double>(rec.seq),
                        rec.objectives[0].relError, rec.regret);
}

std::vector<ProvenanceRecord>
ProvenanceTrace::records() const
{
    std::vector<ProvenanceRecord> out;
    out.reserve(held);
    const std::size_t start = held == cap ? head : 0;
    for (std::size_t i = 0; i < held; ++i)
        out.push_back(ring[(start + i) % (cap ? cap : 1)]);
    return out;
}

void
ProvenanceTrace::clear()
{
    head = 0;
    held = 0;
    total = 0;
}

namespace
{

void
writeProvenanceRecord(JsonWriter &w, const ProvenanceRecord &r)
{
    w.beginObject();
    w.kv("seq", r.seq);
    w.kv("phase", r.phase);
    w.kv("inst", static_cast<std::uint64_t>(r.inst));
    w.kv("close_inst", static_cast<std::uint64_t>(r.closeInst));
    w.kv("model", r.model);
    w.kv("config", r.configKey);
    w.kv("chosen", static_cast<std::int64_t>(r.chosen));
    w.kv("fallback", r.fallback);
    w.kv("sampled", static_cast<std::uint64_t>(r.sampledConfigs));
    w.key("constraints").beginObject();
    w.kv("min_lifetime_years", r.minLifetimeYears);
    w.kv("ipc_fraction", r.ipcFraction);
    w.kv("safety_margin", r.safetyMargin);
    w.endObject();
    w.key("objectives").beginObject();
    for (std::size_t i = 0; i < numProvenanceObjectives; ++i) {
        const ProvenanceObjective &o = r.objectives[i];
        w.key(provenanceObjectiveName(i)).beginObject();
        w.kv("pred", o.predicted);
        w.kv("sigma", o.uncertainty);
        w.kv("real", o.realized);
        w.kv("err", o.relError);
        w.kv("err_valid", o.errorValid);
        w.endObject();
    }
    w.endObject();
    w.key("runner_ups").beginArray();
    for (const ProvenanceCandidate &c : r.runnerUps) {
        w.beginObject();
        w.kv("config", static_cast<std::uint64_t>(c.config));
        w.kv("ipc", c.ipc);
        w.kv("lifetime_years", c.lifetimeYears);
        w.kv("energy_j", c.energyJ);
        w.kv("feasible", c.feasible);
        w.endObject();
    }
    w.endArray();
    w.kv("best_sampled_ipc", r.bestSampledIpc);
    w.kv("regret", r.regret);
    w.kv("cum_regret", r.cumRegret);
    bool anyAttr = false;
    for (const auto &a : r.attribution)
        anyAttr = anyAttr || !a.empty();
    if (anyAttr) {
        w.key("attribution").beginObject();
        for (std::size_t i = 0; i < numProvenanceObjectives; ++i) {
            if (r.attribution[i].empty())
                continue;
            w.key(provenanceObjectiveName(i)).beginArray();
            for (double v : r.attribution[i])
                w.value(v);
            w.endArray();
        }
        w.endObject();
    }
    w.kv("closed", r.closed);
    w.endObject();
}

} // namespace

void
ProvenanceTrace::writeJsonl(std::ostream &os) const
{
    for (const ProvenanceRecord &r : records()) {
        JsonWriter w(os);
        writeProvenanceRecord(w, r);
        os << '\n';
    }
}

void
ProvenanceTrace::writeChromeTrace(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();
    w.beginObject();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 2);
    w.kv("tid", 1);
    w.key("args").beginObject();
    w.kv("name", "provenance");
    w.endObject();
    w.endObject();
    for (const ProvenanceRecord &r : records()) {
        w.beginObject();
        w.kv("name", r.configKey);
        w.kv("ph", "X");
        // ts nominally holds microseconds; we put the instruction
        // count there, as EventTrace does.
        w.kv("ts", static_cast<std::uint64_t>(r.inst));
        w.kv("dur", static_cast<std::uint64_t>(
                        r.closeInst > r.inst ? r.closeInst - r.inst
                                             : 0));
        w.kv("pid", 2);
        w.kv("tid", 1);
        w.key("args").beginObject();
        w.kv("seq", r.seq);
        w.kv("model", r.model);
        w.kv("pred_ipc", r.objectives[0].predicted);
        w.kv("real_ipc", r.objectives[0].realized);
        w.kv("regret", r.regret);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

// --------------------------------------------------------------------
// MetricTimeline
// --------------------------------------------------------------------

bool
statGlobMatch(const std::string &pattern, const std::string &path)
{
    // Iterative greedy glob: '*' matches any run of characters (dots
    // included), everything else is literal. Mirrors the report tool's
    // threshold-rule matching so both sides select the same metrics.
    std::size_t p = 0, s = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (s < path.size()) {
        if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = s;
        } else if (p < pattern.size() && pattern[p] == path[s]) {
            ++p;
            ++s;
        } else if (star != std::string::npos) {
            p = star + 1;
            s = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

void
MetricTimeline::enable(std::vector<std::string> globs,
                       std::size_t capacity)
{
    if (capacity == 0)
        mct_fatal("MetricTimeline::enable requires a nonzero capacity");
    globs_ = std::move(globs);
    ring.assign(capacity, Window{});
    names.clear();
    rollups.clear();
    cap = capacity;
    head = 0;
    held = 0;
    total = 0;
    bound_ = false;
}

void
MetricTimeline::disable()
{
    ring.clear();
    ring.shrink_to_fit();
    globs_.clear();
    names.clear();
    rollups.clear();
    cap = 0;
    head = 0;
    held = 0;
    total = 0;
    bound_ = false;
}

bool
MetricTimeline::selected(const std::string &path) const
{
    if (globs_.empty())
        return true;
    for (const std::string &g : globs_)
        if (statGlobMatch(g, path))
            return true;
    return false;
}

void
MetricTimeline::observe(InstCount inst, const StatSnapshot &delta)
{
    if (cap == 0)
        return;
    if (!bound_) {
        // Bind the tracked-metric list from the first window's keys:
        // snapshot maps are sorted, so the binding is deterministic,
        // and late-registering stats (mct.* appears post-warmup) are
        // selectable as long as they exist by the first boundary.
        for (const auto &[path, v] : delta)
            if (selected(path))
                names.push_back(path);
        rollups.assign(names.size(), Rollup{});
        bound_ = true;
    }
    Window &w = ring[head];
    w.inst = inst;
    w.vals.assign(names.size(), 0.0);
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto it = delta.find(names[i]);
        if (it != delta.end())
            w.vals[i] = it->second.num;
    }
    head = head + 1 == cap ? 0 : head + 1;
    held = std::min(held + 1, cap);
    ++total;
    for (std::size_t i = 0; i < names.size(); ++i) {
        Rollup &r = rollups[i];
        const double v = w.vals[i];
        if (total == 1) {
            r.ewma = v;
            r.min = v;
            r.max = v;
        } else {
            r.ewma = ewmaAlpha * v + (1.0 - ewmaAlpha) * r.ewma;
            r.min = std::min(r.min, v);
            r.max = std::max(r.max, v);
        }
    }
}

std::vector<InstCount>
MetricTimeline::insts() const
{
    std::vector<InstCount> out;
    out.reserve(held);
    const std::size_t start = held == cap ? head : 0;
    for (std::size_t i = 0; i < held; ++i)
        out.push_back(ring[(start + i) % (cap ? cap : 1)].inst);
    return out;
}

std::vector<double>
MetricTimeline::series(std::size_t metricIdx) const
{
    std::vector<double> out;
    out.reserve(held);
    const std::size_t start = held == cap ? head : 0;
    for (std::size_t i = 0; i < held; ++i) {
        const Window &w = ring[(start + i) % (cap ? cap : 1)];
        out.push_back(metricIdx < w.vals.size() ? w.vals[metricIdx]
                                                : 0.0);
    }
    return out;
}

void
MetricTimeline::clear()
{
    for (Window &w : ring)
        w = Window{};
    names.clear();
    rollups.clear();
    head = 0;
    held = 0;
    total = 0;
    bound_ = false;
}

void
MetricTimeline::writeJson(std::ostream &os, const std::string &mode,
                          const std::string &app,
                          const std::string &config,
                          const std::map<std::string, double>
                              &extraFinal) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "mct-timeline-v1");
    w.kv("mode", mode);
    w.kv("app", app);
    w.kv("config", config);
    w.kv("capacity", static_cast<std::uint64_t>(cap));
    w.key("metrics").beginArray();
    for (const std::string &n : names)
        w.value(n);
    w.endArray();
    w.key("inst").beginArray();
    for (const InstCount i : insts())
        w.value(static_cast<std::uint64_t>(i));
    w.endArray();
    w.key("series").beginObject();
    for (std::size_t m = 0; m < names.size(); ++m) {
        w.key(names[m]).beginArray();
        for (const double v : series(m))
            w.value(v);
        w.endArray();
    }
    w.endObject();
    // The flat "final" object follows the mct-stats-v1 shape, so
    // mct_report's loadSnapshots / diff gate it like any other run
    // document. The std::map keeps key order deterministic.
    std::map<std::string, double> fin = extraFinal;
    fin["sim.timeline.windows"] = static_cast<double>(held);
    fin["sim.timeline.recorded"] = static_cast<double>(total);
    fin["sim.timeline.dropped"] = static_cast<double>(dropped());
    fin["sim.timeline.metrics"] = static_cast<double>(names.size());
    for (std::size_t m = 0; m < names.size(); ++m) {
        fin["timeline." + names[m] + ".ewma"] = rollups[m].ewma;
        fin["timeline." + names[m] + ".min"] = rollups[m].min;
        fin["timeline." + names[m] + ".max"] = rollups[m].max;
    }
    w.key("final").beginObject();
    for (const auto &[k, v] : fin)
        w.kv(k, v);
    w.endObject();
    w.endObject();
    os << '\n';
}

// --------------------------------------------------------------------
// WallProfiler
// --------------------------------------------------------------------

void
WallProfiler::begin(const std::string &stage)
{
    auto [it, isNew] = cells.try_emplace(stage);
    if (isNew)
        order.push_back(stage);
    Cell &c = it->second;
    if (c.open)
        mct_panic("WallProfiler stage '", stage, "' begun twice");
    c.open = true;
    c.start = std::chrono::steady_clock::now();
}

void
WallProfiler::end(const std::string &stage)
{
    const auto it = cells.find(stage);
    if (it == cells.end() || !it->second.open)
        mct_panic("WallProfiler stage '", stage, "' ended but not begun");
    Cell &c = it->second;
    c.open = false;
    ++c.calls;
    c.seconds += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - c.start)
                     .count();
}

std::vector<WallProfiler::Stage>
WallProfiler::stages() const
{
    std::vector<Stage> out;
    out.reserve(order.size());
    for (const std::string &name : order) {
        const Cell &c = cells.at(name);
        out.push_back({name, c.seconds, c.calls});
    }
    return out;
}

double
WallProfiler::seconds(const std::string &stage) const
{
    const auto it = cells.find(stage);
    return it == cells.end() ? 0.0 : it->second.seconds;
}

void
WallProfiler::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("stages").beginArray();
    for (const Stage &s : stages()) {
        w.beginObject();
        w.kv("name", s.name);
        w.kv("seconds", s.seconds);
        w.kv("calls", s.calls);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

// --------------------------------------------------------------------
// HostProfiler
// --------------------------------------------------------------------

HostMemory
parseHostStatus(const std::string &text)
{
    HostMemory m;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        const std::string key = line.substr(0, colon);
        double *field = nullptr;
        if (key == "VmRSS")
            field = &m.rssKb;
        else if (key == "VmHWM")
            field = &m.hwmKb;
        else if (key == "VmData")
            field = &m.heapKb;
        if (!field)
            continue;
        // "VmRSS:     123456 kB" — the value is the first numeric
        // token after the colon, always reported in kB.
        char *end = nullptr;
        const double v = std::strtod(line.c_str() + colon + 1, &end);
        if (end == line.c_str() + colon + 1)
            continue;
        *field = v;
        m.valid = true;
    }
    return m;
}

std::uint64_t
HostClock::wallNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
HostClock::cpuNs() const
{
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
        return static_cast<std::uint64_t>(ts.tv_sec) *
                   1000ull * 1000 * 1000 +
               static_cast<std::uint64_t>(ts.tv_nsec);
#endif
    return static_cast<std::uint64_t>(
        static_cast<double>(std::clock()) * 1e9 / CLOCKS_PER_SEC);
}

std::string
HostClock::procStatus() const
{
    std::ifstream is("/proc/self/status");
    if (!is)
        return {};
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

void
HostProfiler::enable(const HostClock *clock, std::size_t timelineCap)
{
    static const HostClock realClock;
    clock_ = clock ? clock : &realClock;
    epochWallNs_ = clock_->wallNs();
    epochCpuNs_ = clock_->cpuNs();
    timelineCap_ = timelineCap;
    timeline_.clear();
    timelineDropped_ = 0;
    sampleMemory();
}

void
HostProfiler::begin(const char *stage)
{
    if (!enabled())
        return;
    auto [it, isNew] = cells_.try_emplace(stage);
    Cell &c = it->second;
    if (isNew) {
        c.index = static_cast<std::uint32_t>(order_.size());
        order_.push_back(stage);
    }
    if (c.open)
        mct_panic("HostProfiler stage '", stage, "' begun twice");
    c.open = true;
    c.openWallNs = clock_->wallNs();
    c.openCpuNs = clock_->cpuNs();
}

void
HostProfiler::end(const char *stage)
{
    if (!enabled())
        return;
    const auto it = cells_.find(stage);
    if (it == cells_.end() || !it->second.open)
        mct_panic("HostProfiler stage '", stage,
                  "' ended but not begun");
    Cell &c = it->second;
    c.open = false;
    ++c.calls;
    const std::uint64_t wall = clock_->wallNs();
    const std::uint64_t cpu = clock_->cpuNs();
    const std::uint64_t wallD =
        wall > c.openWallNs ? wall - c.openWallNs : 0;
    const std::uint64_t cpuD =
        cpu > c.openCpuNs ? cpu - c.openCpuNs : 0;
    c.wallNs += static_cast<double>(wallD);
    c.cpuNs += static_cast<double>(cpuD);
    if (timeline_.size() < timelineCap_) {
        const std::uint64_t start = c.openWallNs > epochWallNs_
                                        ? c.openWallNs - epochWallNs_
                                        : 0;
        timeline_.push_back({c.index, start, wallD, cpuD});
    } else {
        ++timelineDropped_;
    }
}

std::vector<HostProfiler::Stage>
HostProfiler::stages() const
{
    std::vector<Stage> out;
    out.reserve(order_.size());
    for (const std::string &name : order_) {
        const Cell &c = cells_.at(name);
        out.push_back({name, c.wallNs / 1e9, c.cpuNs / 1e9, c.calls});
    }
    return out;
}

double
HostProfiler::wallSeconds(const std::string &stage) const
{
    const auto it = cells_.find(stage);
    return it == cells_.end() ? 0.0 : it->second.wallNs / 1e9;
}

double
HostProfiler::cpuSeconds(const std::string &stage) const
{
    const auto it = cells_.find(stage);
    return it == cells_.end() ? 0.0 : it->second.cpuNs / 1e9;
}

double
HostProfiler::elapsedWallSeconds() const
{
    if (!enabled())
        return 0.0;
    const std::uint64_t now = clock_->wallNs();
    return now > epochWallNs_
               ? static_cast<double>(now - epochWallNs_) / 1e9
               : 0.0;
}

double
HostProfiler::elapsedCpuSeconds() const
{
    if (!enabled())
        return 0.0;
    const std::uint64_t now = clock_->cpuNs();
    return now > epochCpuNs_
               ? static_cast<double>(now - epochCpuNs_) / 1e9
               : 0.0;
}

double
HostProfiler::mips() const
{
    const double wall = elapsedWallSeconds();
    if (wall <= 0.0)
        return 0.0;
    return static_cast<double>(insts_) / 1e6 / wall;
}

void
HostProfiler::sampleMemory()
{
    if (!enabled())
        return;
    mem_ = parseHostStatus(clock_->procStatus());
    rssHwmKb_ = std::max({rssHwmKb_, mem_.rssKb, mem_.hwmKb});
}

void
HostProfiler::samplePeriodic(std::uint64_t inst)
{
    if (!enabled())
        return;
    sampleMemory();
    periodic_.push_back({inst, elapsedWallSeconds(),
                         elapsedCpuSeconds(), mips(), mem_.rssKb});
}

void
HostProfiler::registerStats(StatRegistry &reg)
{
    reg.addGauge(
        "sim.mips", [this] { return mips(); },
        "million simulated instructions per host wall-second");
    reg.addGauge(
        "sim.host.wall_seconds",
        [this] { return elapsedWallSeconds(); },
        "host wall seconds since host profiling was enabled");
    reg.addGauge(
        "sim.host.cpu_seconds",
        [this] { return elapsedCpuSeconds(); },
        "process CPU seconds since host profiling was enabled");
    reg.addGauge(
        "sim.host.cpu_util",
        [this] {
            const double wall = elapsedWallSeconds();
            return wall > 0.0 ? elapsedCpuSeconds() / wall : 0.0;
        },
        "process CPU seconds per wall second (>1 with threads)");
    reg.addGauge(
        "sim.host.rss_kb", [this] { return mem_.rssKb; },
        "resident set size (kB) at the last memory sample");
    reg.addGauge(
        "sim.host.rss_hwm_kb", [this] { return rssHighWaterKb(); },
        "resident set high water (kB) across all memory samples");
    reg.addGauge(
        "sim.host.heap_kb", [this] { return mem_.heapKb; },
        "data segment heap + globals (kB) at the last sample");
    reg.addCounter(
        "sim.host.instructions", [this] { return instructions(); },
        "simulated instructions credited to the host profiler");
    for (const char *path :
         {"sim.mips", "sim.host.wall_seconds", "sim.host.cpu_seconds",
          "sim.host.cpu_util", "sim.host.rss_kb",
          "sim.host.rss_hwm_kb", "sim.host.heap_kb",
          "sim.host.instructions"})
        reg.markHost(path);
}

void
HostProfiler::writeJson(std::ostream &os, const std::string &mode,
                        const std::string &app,
                        const std::string &config) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "mct-host-v1");
    w.kv("mode", mode);
    w.kv("app", app);
    w.kv("config", config);
    w.key("final").beginObject();
    w.kv("sim.mips", mips());
    const double wall = elapsedWallSeconds();
    w.kv("sim.host.wall_seconds", wall);
    w.kv("sim.host.cpu_seconds", elapsedCpuSeconds());
    w.kv("sim.host.cpu_util",
         wall > 0.0 ? elapsedCpuSeconds() / wall : 0.0);
    w.kv("sim.host.rss_kb", mem_.rssKb);
    w.kv("sim.host.rss_hwm_kb", rssHwmKb_);
    w.kv("sim.host.heap_kb", mem_.heapKb);
    w.kv("sim.host.instructions", insts_);
    w.kv("sim.host.timeline_dropped", timelineDropped_);
    w.endObject();
    w.key("periodic").beginArray();
    for (const PeriodicSample &s : periodic_) {
        w.beginObject();
        w.kv("inst", s.inst);
        w.key("delta").beginObject();
        w.kv("sim.mips", s.mips);
        w.kv("sim.host.wall_seconds", s.wallSeconds);
        w.kv("sim.host.cpu_seconds", s.cpuSeconds);
        w.kv("sim.host.rss_kb", s.rssKb);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.key("stages").beginArray();
    for (const Stage &s : stages()) {
        w.beginObject();
        w.kv("name", s.name);
        w.kv("seconds", s.wallSeconds);
        w.kv("cpu_seconds", s.cpuSeconds);
        w.kv("calls", s.calls);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

void
HostProfiler::writeChromeTrace(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();
    w.beginObject();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", 3);
    w.key("args").beginObject();
    w.kv("name", "mct_sim host");
    w.endObject();
    w.endObject();
    w.beginObject();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 3);
    w.kv("tid", 1);
    w.key("args").beginObject();
    w.kv("name", "host");
    w.endObject();
    w.endObject();
    for (const TimelineSlice &s : timeline_) {
        w.beginObject();
        w.kv("name", order_[s.stage]);
        w.kv("ph", "X");
        // ts/dur are real microseconds since enable(); the simulated
        // tracks put the instruction/tick clock there instead, so
        // this file stands alone rather than merging with them.
        w.kv("ts", static_cast<double>(s.startNs) / 1000.0);
        w.kv("dur", static_cast<double>(s.durNs) / 1000.0);
        w.kv("pid", 3);
        w.kv("tid", 1);
        w.key("args").beginObject();
        w.kv("cpu_us", static_cast<double>(s.cpuNs) / 1000.0);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

// ---------------------------------------------------------------------
// Checkpoint serialization. Every method pairs with a deserialize()
// that restores the exact private state, so a resumed run re-produces
// an uninterrupted run's output byte for byte.
// ---------------------------------------------------------------------

void
LogHistogram::serialize(Serializer &s) const
{
    for (const std::uint64_t b : buckets_)
        s.putU64(b);
    s.putU64(n);
    s.putF64(total);
}

void
LogHistogram::deserialize(Deserializer &d)
{
    for (std::uint64_t &b : buckets_)
        b = d.getU64();
    n = d.getU64();
    total = d.getF64();
}

void
serializeSnapshot(Serializer &s, const StatSnapshot &snap)
{
    s.putU64(snap.size());
    for (const auto &[path, v] : snap) {
        s.putStr(path);
        s.putU8(static_cast<std::uint8_t>(v.kind));
        s.putF64(v.num);
        s.putU64(v.count);
        s.putU64(v.buckets.size());
        for (const std::uint64_t b : v.buckets)
            s.putU64(b);
    }
}

StatSnapshot
deserializeSnapshot(Deserializer &d)
{
    StatSnapshot snap;
    const std::uint64_t count = d.getU64();
    for (std::uint64_t i = 0; i < count && d.ok(); ++i) {
        std::string path = d.getStr();
        StatValue v;
        v.kind = static_cast<StatKind>(d.getU8());
        v.num = d.getF64();
        v.count = d.getU64();
        v.buckets.resize(d.getU64());
        for (std::uint64_t &b : v.buckets)
            b = d.getU64();
        snap.emplace(std::move(path), std::move(v));
    }
    return snap;
}

void
StatRegistry::serializeOwned(Serializer &s) const
{
    std::uint64_t owned = 0;
    for (const auto &[path, e] : entries)
        if (e.cell || e.hist)
            ++owned;
    s.putU64(owned);
    for (const auto &[path, e] : entries) {
        if (e.cell) {
            s.putStr(path);
            s.putU8(1);
            s.putU64(*e.cell);
        } else if (e.hist) {
            s.putStr(path);
            s.putU8(2);
            e.hist->serialize(s);
        }
    }
}

void
StatRegistry::deserializeOwned(Deserializer &d)
{
    const std::uint64_t owned = d.getU64();
    for (std::uint64_t i = 0; i < owned && d.ok(); ++i) {
        const std::string path = d.getStr();
        const std::uint8_t tag = d.getU8();
        auto it = entries.find(path);
        if (it == entries.end())
            mct_panic("checkpoint restores unregistered stat ", path);
        if (tag == 1) {
            if (!it->second.cell)
                mct_panic("checkpoint cell/histogram mismatch at ", path);
            *it->second.cell = d.getU64();
        } else {
            if (!it->second.hist)
                mct_panic("checkpoint cell/histogram mismatch at ", path);
            it->second.hist->deserialize(d);
        }
    }
}

void
EventTrace::serialize(Serializer &s) const
{
    s.putU64(cap);
    s.putU64(head);
    s.putU64(held);
    s.putU64(total);
    for (const TraceEvent &e : ring) {
        s.putU8(static_cast<std::uint8_t>(e.type));
        s.putU64(e.inst);
        for (const double a : e.args)
            s.putF64(a);
    }
}

void
EventTrace::deserialize(Deserializer &d)
{
    if (d.getU64() != cap)
        mct_panic("checkpoint EventTrace capacity mismatch");
    head = static_cast<std::size_t>(d.getU64());
    held = static_cast<std::size_t>(d.getU64());
    total = d.getU64();
    for (TraceEvent &e : ring) {
        e.type = static_cast<TraceEventType>(d.getU8());
        e.inst = d.getU64();
        for (double &a : e.args)
            a = d.getF64();
    }
}

namespace
{

void
serializeSpanRecord(Serializer &s, const SpanRecord &r)
{
    s.putU64(r.id);
    s.putU64(r.addr);
    s.putBool(r.isWrite);
    s.putI64(r.hitLevel);
    s.putU64(r.inst);
    s.putU64(r.begin);
    s.putU64(r.end);
    for (const Tick t : r.enter)
        s.putU64(t);
    for (const Tick t : r.exit)
        s.putU64(t);
    s.putU8(r.present);
}

void
deserializeSpanRecord(Deserializer &d, SpanRecord &r)
{
    r.id = d.getU64();
    r.addr = d.getU64();
    r.isWrite = d.getBool();
    r.hitLevel = static_cast<int>(d.getI64());
    r.inst = d.getU64();
    r.begin = d.getU64();
    r.end = d.getU64();
    for (Tick &t : r.enter)
        t = d.getU64();
    for (Tick &t : r.exit)
        t = d.getU64();
    r.present = d.getU8();
}

} // namespace

void
SpanTrace::serialize(Serializer &s) const
{
    s.putU64(every);
    s.putU64(cap);
    s.putU64(head);
    s.putU64(held);
    s.putU64(total);
    s.putU64(curId);
    s.putBool(curValid);
    for (const SpanRecord &r : ring)
        serializeSpanRecord(s, r);
    s.putU64(open.size());
    for (const auto &[id, o] : open) {
        s.putU64(id);
        serializeSpanRecord(s, o.rec);
        s.putU8(o.openBits);
    }
}

void
SpanTrace::deserialize(Deserializer &d)
{
    if (d.getU64() != every || d.getU64() != cap)
        mct_panic("checkpoint SpanTrace configuration mismatch");
    head = static_cast<std::size_t>(d.getU64());
    held = static_cast<std::size_t>(d.getU64());
    total = d.getU64();
    curId = d.getU64();
    curValid = d.getBool();
    for (SpanRecord &r : ring)
        deserializeSpanRecord(d, r);
    open.clear();
    const std::uint64_t nOpen = d.getU64();
    for (std::uint64_t i = 0; i < nOpen && d.ok(); ++i) {
        const std::uint64_t id = d.getU64();
        OpenSpan o;
        deserializeSpanRecord(d, o.rec);
        o.openBits = d.getU8();
        open.emplace(id, std::move(o));
    }
}

void
ProvenanceRecord::serialize(Serializer &s) const
{
    s.putU64(seq);
    s.putU64(phase);
    s.putU64(inst);
    s.putU64(closeInst);
    s.putStr(model);
    s.putStr(configKey);
    s.putI64(chosen);
    s.putBool(fallback);
    s.putU32(sampledConfigs);
    s.putF64(minLifetimeYears);
    s.putF64(ipcFraction);
    s.putF64(safetyMargin);
    for (const ProvenanceObjective &o : objectives) {
        s.putF64(o.predicted);
        s.putF64(o.uncertainty);
        s.putF64(o.realized);
        s.putF64(o.relError);
        s.putBool(o.errorValid);
    }
    s.putU64(runnerUps.size());
    for (const ProvenanceCandidate &c : runnerUps) {
        s.putU32(c.config);
        s.putF64(c.ipc);
        s.putF64(c.lifetimeYears);
        s.putF64(c.energyJ);
        s.putBool(c.feasible);
    }
    s.putF64(bestSampledIpc);
    s.putF64(regret);
    s.putF64(cumRegret);
    for (const std::vector<double> &attr : attribution) {
        s.putU64(attr.size());
        for (const double a : attr)
            s.putF64(a);
    }
    s.putBool(closed);
}

void
ProvenanceRecord::deserialize(Deserializer &d)
{
    seq = d.getU64();
    phase = d.getU64();
    inst = d.getU64();
    closeInst = d.getU64();
    model = d.getStr();
    configKey = d.getStr();
    chosen = static_cast<std::int32_t>(d.getI64());
    fallback = d.getBool();
    sampledConfigs = d.getU32();
    minLifetimeYears = d.getF64();
    ipcFraction = d.getF64();
    safetyMargin = d.getF64();
    for (ProvenanceObjective &o : objectives) {
        o.predicted = d.getF64();
        o.uncertainty = d.getF64();
        o.realized = d.getF64();
        o.relError = d.getF64();
        o.errorValid = d.getBool();
    }
    runnerUps.resize(d.getU64());
    for (ProvenanceCandidate &c : runnerUps) {
        c.config = d.getU32();
        c.ipc = d.getF64();
        c.lifetimeYears = d.getF64();
        c.energyJ = d.getF64();
        c.feasible = d.getBool();
    }
    bestSampledIpc = d.getF64();
    regret = d.getF64();
    cumRegret = d.getF64();
    for (std::vector<double> &attr : attribution) {
        attr.resize(d.getU64());
        for (double &a : attr)
            a = d.getF64();
    }
    closed = d.getBool();
}

void
ProvenanceTrace::serialize(Serializer &s) const
{
    s.putU64(cap);
    s.putU64(head);
    s.putU64(held);
    s.putU64(total);
    for (const ProvenanceRecord &r : ring)
        r.serialize(s);
}

void
ProvenanceTrace::deserialize(Deserializer &d)
{
    if (d.getU64() != cap)
        mct_panic("checkpoint ProvenanceTrace capacity mismatch");
    head = static_cast<std::size_t>(d.getU64());
    held = static_cast<std::size_t>(d.getU64());
    total = d.getU64();
    for (ProvenanceRecord &r : ring)
        r.deserialize(d);
}

void
MetricTimeline::serialize(Serializer &s) const
{
    s.putU64(cap);
    s.putU64(head);
    s.putU64(held);
    s.putU64(total);
    s.putBool(bound_);
    s.putU64(names.size());
    for (const std::string &n : names)
        s.putStr(n);
    for (const Rollup &r : rollups) {
        s.putF64(r.ewma);
        s.putF64(r.min);
        s.putF64(r.max);
    }
    for (const Window &w : ring) {
        s.putU64(w.inst);
        s.putU64(w.vals.size());
        for (const double v : w.vals)
            s.putF64(v);
    }
}

void
MetricTimeline::deserialize(Deserializer &d)
{
    if (d.getU64() != cap)
        mct_panic("checkpoint MetricTimeline capacity mismatch");
    head = static_cast<std::size_t>(d.getU64());
    held = static_cast<std::size_t>(d.getU64());
    total = d.getU64();
    bound_ = d.getBool();
    names.resize(d.getU64());
    for (std::string &n : names)
        n = d.getStr();
    rollups.resize(names.size());
    for (Rollup &r : rollups) {
        r.ewma = d.getF64();
        r.min = d.getF64();
        r.max = d.getF64();
    }
    for (Window &w : ring) {
        w.inst = d.getU64();
        w.vals.resize(d.getU64());
        for (double &v : w.vals)
            v = d.getF64();
    }
}

} // namespace mct
