/**
 * @file
 * Deterministic N-way merge of StatRegistry snapshots.
 *
 * The fleet rollup (mct_report aggregate), the parallel sweep engine
 * and any future multi-run consumer all need one answer to "what do K
 * runs look like as a single snapshot". StatMerge gives that answer
 * with per-kind semantics:
 *
 *  - Counters sum across runs (the fleet did this much work).
 *  - Gauges collapse to their mean under the original path and fan
 *    out into count/mean/min/max/stddev dispersion cells, accumulated
 *    with Welford's algorithm so a single pass is numerically stable.
 *  - Log-histograms add bucket-wise, so a percentile computed from
 *    the merged buckets is exactly the percentile of the concatenated
 *    observation streams.
 *
 * The merge is order-invariant by construction: inputs are processed
 * in a canonical order (sorted by caller-supplied id, with a full
 * content comparison breaking ties), the output key set is the sorted
 * union of the input key sets, and every floating-point reduction
 * walks runs in that fixed order. Feeding the same snapshots in any
 * permutation therefore produces bit-identical doubles, which is what
 * lets the fleet document promise byte-identical output.
 */

#ifndef MCT_COMMON_STAT_MERGE_HH
#define MCT_COMMON_STAT_MERGE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/instrument.hh"

namespace mct
{

/**
 * Accumulates snapshots (each tagged with a stable id, e.g. the run
 * id from its manifest) and merges them on demand. add() order does
 * not affect the result.
 */
class StatMerge
{
  public:
    /** Dispersion cells of one gauge across the merged runs. */
    struct GaugeCells
    {
        std::uint64_t count = 0; ///< runs that carried the gauge
        double mean = 0.0;
        double min = 0.0;
        double max = 0.0;
        double stddev = 0.0; ///< unbiased sample stddev (0 below n=2)
    };

    /** The merged view of every queued snapshot. */
    struct Result
    {
        /** Snapshots merged. */
        std::size_t runs = 0;

        /**
         * Sorted union of the input keys: counters carry the summed
         * value, gauges their across-run mean, histograms the
         * bucket-wise total. A key's kind is taken from the first
         * run (in canonical id order) that carries it.
         */
        StatSnapshot merged;

        /** Dispersion cells for every gauge in @c merged. */
        std::map<std::string, GaugeCells> gauges;
    };

    /** Queue one run's snapshot under a stable id. */
    void add(std::string id, StatSnapshot snap);

    /** Snapshots queued so far. */
    std::size_t runs() const { return inputs.size(); }

    /** Merge everything queued; add() order never changes the bits. */
    Result merge() const;

  private:
    struct Input
    {
        std::string id;
        StatSnapshot snap;
    };

    std::vector<Input> inputs;
};

} // namespace mct

#endif // MCT_COMMON_STAT_MERGE_HH
