/**
 * @file
 * Minimal CSV reading/writing used by the sweep cache and by bench
 * binaries that dump figure series for external plotting.
 */

#ifndef MCT_COMMON_CSV_HH
#define MCT_COMMON_CSV_HH

#include <string>
#include <vector>

namespace mct
{

/**
 * Row-oriented CSV document. Cells are stored as strings; numeric
 * helpers parse on access. Cells containing commas, double quotes,
 * newlines, or carriage returns are quoted RFC-4180 style on save
 * (embedded quotes double), and load() parses quoted cells back —
 * including quoted cells spanning physical lines — so any cell
 * content round-trips.
 */
class CsvFile
{
  public:
    /** Append a row of string cells. */
    void row(std::vector<std::string> cells);

    /** Append a row of doubles, formatted with full precision. */
    void numericRow(const std::vector<double> &cells);

    /** Write the document to the given path; returns false on error. */
    [[nodiscard]] bool save(const std::string &path) const;

    /** Load a document; returns false if the file cannot be read. */
    [[nodiscard]] bool load(const std::string &path);

    /** All rows. */
    const std::vector<std::vector<std::string>> &data() const
    {
        return rowsData;
    }

    /** Parse a cell as double (fatal on malformed input). */
    [[nodiscard]] static double asDouble(const std::string &cell);

    /**
     * Parse a cell as double without aborting. Requires the whole
     * cell (modulo surrounding whitespace) to be numeric; returns
     * false and leaves @p out untouched on malformed input. Callers
     * on recoverable paths (sweep-cache load) use this to skip
     * corrupt rows instead of dying.
     */
    [[nodiscard]] static bool tryDouble(const std::string &cell,
                                        double &out);

  private:
    std::vector<std::vector<std::string>> rowsData;
};

} // namespace mct

#endif // MCT_COMMON_CSV_HH
