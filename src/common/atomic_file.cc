#include "common/atomic_file.hh"

#include <cstdio>

#include <unistd.h>

#include "common/logging.hh"

namespace mct
{

bool
writeFileAtomic(const std::string &path, std::string_view content)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        mct_warn("atomic write: cannot open ", tmp);
        return false;
    }
    bool good = content.empty() ||
                std::fwrite(content.data(), 1, content.size(), f) ==
                    content.size();
    good = good && std::fflush(f) == 0;
    // Flush the staged bytes to stable storage before the rename makes
    // them visible, so a crash cannot publish an empty or partial file.
    good = good && ::fsync(::fileno(f)) == 0;
    good = std::fclose(f) == 0 && good;
    if (good)
        good = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!good) {
        std::remove(tmp.c_str());
        mct_warn("atomic write: failed to publish ", path);
    }
    return good;
}

bool
AtomicFile::commit()
{
    if (committed)
        return true;
    committed = writeFileAtomic(target, os.str());
    return committed;
}

} // namespace mct
