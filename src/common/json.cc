#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace mct
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

/** Process-wide tally of NaN/Inf values that reached the emitter. */
std::uint64_t nonfiniteEmitted = 0;

} // namespace

std::uint64_t
jsonNonfiniteCount()
{
    return nonfiniteEmitted;
}

void
resetJsonNonfiniteCount()
{
    nonfiniteEmitted = 0;
}

void
restoreJsonNonfiniteCount(std::uint64_t value)
{
    nonfiniteEmitted = value;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v)) {
        ++nonfiniteEmitted;
        return "null";
    }
    // Integers small enough to be exact print without a fraction so
    // counters stay integral in the output.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v)
            return shorter;
    }
    return buf;
}

void
JsonWriter::separate()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (!pending.empty()) {
        if (pending.back() == '1')
            out << ',';
        pending.back() = '1';
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out << '{';
    pending.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    pending.pop_back();
    out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out << '[';
    pending.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    pending.pop_back();
    out << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    out << '"' << jsonEscape(k) << "\":";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    out << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    out << jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separate();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out << (v ? "true" : "false");
    return *this;
}

} // namespace mct
