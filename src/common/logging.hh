/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic() flags internal simulator bugs (aborts); fatal() flags user
 * errors such as invalid configuration (exits); warn() and inform()
 * report conditions without stopping the simulation.
 */

#ifndef MCT_COMMON_LOGGING_HH
#define MCT_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace mct
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Get the process-wide log level (default: Warn). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Format a parameter pack into a string via an ostringstream. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Internal invariant violated: this is a simulator bug. Aborts. */
#define mct_panic(...) \
    ::mct::detail::panicImpl(__FILE__, __LINE__, \
                             ::mct::detail::format(__VA_ARGS__))

/** Unrecoverable user/configuration error. Exits with status 1. */
#define mct_fatal(...) \
    ::mct::detail::fatalImpl(__FILE__, __LINE__, \
                             ::mct::detail::format(__VA_ARGS__))

/** Something looks wrong but the simulation can continue. */
#define mct_warn(...) \
    ::mct::detail::warnImpl(::mct::detail::format(__VA_ARGS__))

/** Normal operating status message. */
#define mct_inform(...) \
    ::mct::detail::informImpl(::mct::detail::format(__VA_ARGS__))

/** Developer-facing trace message. */
#define mct_debug(...) \
    ::mct::detail::debugImpl(::mct::detail::format(__VA_ARGS__))

} // namespace mct

#endif // MCT_COMMON_LOGGING_HH
