/**
 * @file
 * Run manifests: the self-description a run leaves next to its
 * telemetry artifacts.
 *
 * Every mct_sim invocation (and every bench main through the harness)
 * publishes an mct-manifest-v1 JSON naming the run — mode, app,
 * config, seed, fault plan, checkpoint fingerprint — and listing
 * every artifact it produced with the artifact's relative path, size
 * and FNV-1a checksum. A directory of runs thereby becomes a
 * self-describing corpus: `mct_report aggregate` scans the manifests,
 * re-checksums the artifacts (a mismatch is a named integrity error),
 * and merges the runs into one fleet document without guessing which
 * file belongs to which run.
 *
 * The run id is derived from the run fingerprint, never from wall
 * time, so identically-configured runs produce identical manifests
 * and the whole corpus stays byte-reproducible.
 */

#ifndef MCT_COMMON_MANIFEST_HH
#define MCT_COMMON_MANIFEST_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mct
{

/** One artifact a run produced, as listed in its manifest. */
struct ManifestArtifact
{
    std::string kind;   ///< stats, spans, host, timeline, alerts, ...
    std::string schema; ///< document schema ("" for JSONL/Chrome dumps)
    std::string path;   ///< relative to the manifest's directory
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0; ///< FNV-1a over the artifact's bytes
};

/** Everything an mct-manifest-v1 document records about one run. */
struct RunManifest
{
    std::string runId; ///< deterministic id (see manifestRunId)
    std::string mode;
    std::string app;
    std::string config;
    std::uint64_t seed = 0;
    std::string faultPlan;   ///< fault-plan spec ("" when none)
    std::string fingerprint; ///< run identity (checkpoint fingerprint)
    std::vector<ManifestArtifact> artifacts;
};

/**
 * FNV-1a checksum and size of a file's raw bytes. Returns false
 * (leaving the outputs untouched) when the file cannot be read.
 */
[[nodiscard]] bool checksumFile(const std::string &path,
                                std::uint64_t &checksum,
                                std::uint64_t &bytes);

/** 16-digit lowercase hex spelling of a checksum. */
std::string checksumHex(std::uint64_t v);

/** Deterministic run id: FNV-1a of the fingerprint string, in hex. */
std::string manifestRunId(const std::string &fingerprint);

/**
 * @p artifactPath relative to the directory holding
 * @p manifestPath: a shared leading directory is stripped; paths
 * outside that directory are kept verbatim (the consumer resolves
 * relative entries against the manifest's directory either way).
 */
std::string manifestRelative(const std::string &manifestPath,
                             const std::string &artifactPath);

/**
 * Emit @p m as an mct-manifest-v1 document. Artifacts are sorted by
 * path so the bytes never depend on emission order.
 */
void writeManifestJson(std::ostream &os, const RunManifest &m);

/** Declared key set of mct-manifest-v1 (doc-contract lint + tests). */
const std::vector<std::string> &manifestDocKeys();

} // namespace mct

#endif // MCT_COMMON_MANIFEST_HH
