#include "common/serialize.hh"

#include <cstring>

namespace mct
{

std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ULL;
    }
    return h;
}

void
Serializer::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
}

void
Serializer::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
}

void
Serializer::putF64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
Serializer::putStr(std::string_view v)
{
    putU64(v.size());
    buf.append(v.data(), v.size());
}

const unsigned char *
Deserializer::take(std::size_t count)
{
    if (!good || count > n - pos) {
        good = false;
        return nullptr;
    }
    const unsigned char *at = p + pos;
    pos += count;
    return at;
}

std::uint8_t
Deserializer::getU8()
{
    const unsigned char *at = take(1);
    return at ? *at : 0;
}

std::uint32_t
Deserializer::getU32()
{
    const unsigned char *at = take(4);
    if (!at)
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(at[i]) << (8 * i);
    return v;
}

std::uint64_t
Deserializer::getU64()
{
    const unsigned char *at = take(8);
    if (!at)
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(at[i]) << (8 * i);
    return v;
}

double
Deserializer::getF64()
{
    const std::uint64_t bits = getU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Deserializer::getStr()
{
    const std::uint64_t len = getU64();
    if (!good || len > n - pos) {
        good = false;
        return {};
    }
    const unsigned char *at = take(static_cast<std::size_t>(len));
    return at ? std::string(reinterpret_cast<const char *>(at),
                            static_cast<std::size_t>(len))
              : std::string{};
}

} // namespace mct
