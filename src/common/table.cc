#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mct
{

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    body.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(head);
    for (const auto &r : body)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i]
                                                       : std::string();
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cell;
        }
        os << "\n";
    };

    if (!head.empty()) {
        emit(head);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : body)
        emit(r);
    os.flush();
}

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
fmtBool(bool v)
{
    return v ? "True" : "False";
}

std::string
fmtOrNa(bool guard, double v, int precision)
{
    return guard ? fmt(v, precision) : "N/A";
}

} // namespace mct
