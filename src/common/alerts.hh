/**
 * @file
 * Online alerting over windowed metric deltas.
 *
 * An AlertEngine is driven by a declarative rule set (alerts.txt,
 * same data-not-code grammar family as the report tool's
 * thresholds.txt): each rule names a metric glob, a condition
 * (above / below / ewma-dev / stuck / nonfinite), how many
 * consecutive windows the condition must hold, and a severity. At
 * every --stats-every boundary the driver hands over the window's
 * delta snapshot (StatScope::Sim only, so evaluation is deterministic
 * across identically-seeded runs); rules bind lazily to the metrics
 * present in the first window, first matching rule wins per metric.
 *
 * A raise emits an AlertRaised trace event, bumps the alert.* stat
 * cells, appends to the alert log (alerts.jsonl), and — for critical
 * severity — invokes the attached escalation hook so the MCT runtime
 * can climb its health-check ladder in response, closing the
 * observe -> react loop. Clearing mirrors with AlertCleared.
 *
 * Disabled (the default) observe() is a single branch and nothing is
 * registered, so unarmed runs stay byte-identical.
 */

#ifndef MCT_COMMON_ALERTS_HH
#define MCT_COMMON_ALERTS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/instrument.hh"
#include "common/types.hh"

namespace mct
{

class Serializer;
class Deserializer;

/** When an alert rule's condition holds for a window. */
enum class AlertCondition : std::uint8_t
{
    Above,     ///< window value > threshold
    Below,     ///< window value < threshold
    EwmaDev,   ///< |value - ewma| > threshold * max(|ewma|, eps)
    Stuck,     ///< value exactly equal to the previous window's
    Nonfinite, ///< value is NaN or infinite
};

/** How loudly a firing rule escalates. */
enum class AlertSeverity : std::uint8_t
{
    Info,
    Warn,
    Critical, ///< feeds the MCT health-check escalation ladder
};

/** Stable lowercase name (alerts.txt keyword and JSONL field). */
const char *toString(AlertCondition cond);
const char *toString(AlertSeverity sev);

/** One parsed alerts.txt rule. */
struct AlertRule
{
    std::string name;   ///< rule identity (trace arg, JSONL, reports)
    std::string glob;   ///< metric selector ('*' crosses dots)
    AlertCondition cond = AlertCondition::Above;
    double threshold = 0.0;    ///< above/below/ewma-dev only
    std::uint32_t windows = 1; ///< consecutive windows to raise
    AlertSeverity severity = AlertSeverity::Warn;
};

/**
 * Parse an alerts.txt rule set. Grammar (first-match-wins per metric,
 * like thresholds.txt):
 *
 *   alert <name>            starts a rule
 *     metric <glob>         metric selector (required)
 *     condition <cond>      above|below|ewma-dev|stuck|nonfinite
 *                           (required)
 *     threshold <v>         required for above/below/ewma-dev,
 *                           rejected for stuck/nonfinite
 *     windows <n>           consecutive windows to raise (default 1)
 *     severity <sev>        info|warn|critical (default warn)
 *
 * '#' starts a comment; blank lines separate nothing. Any malformed
 * line is an error. Returns false with @p err set on failure.
 */
[[nodiscard]] bool parseAlerts(const std::string &text,
                               std::vector<AlertRule> &out,
                               std::string &err);

/** parseAlerts over a file's contents. */
[[nodiscard]] bool loadAlerts(const std::string &path,
                              std::vector<AlertRule> &out,
                              std::string &err);

/**
 * Canonical one-line-per-rule rendering of a rule set. Fed into the
 * run fingerprint so a resumed run is only accepted against the
 * identical alert configuration.
 */
std::string canonicalAlertRules(const std::vector<AlertRule> &rules);

/**
 * Evaluates alert rules online against windowed metric deltas. Rules
 * bind to concrete metrics at the first observe() (first matching
 * rule per metric wins); each bound (rule, metric) instance keeps a
 * consecutive-hold streak, raising once the streak reaches the
 * rule's window count and clearing the first window the condition
 * stops holding. Raise/clear events land in a capped log ring (for
 * alerts.jsonl) and in the attached EventTrace; the alert.* stat
 * cells live in the registry (host-scoped, so deterministic
 * snapshots never see them) and ride its owned-state checkpointing.
 *
 * The evaluation state serializes through the checkpoint subsystem;
 * the rule set and log capacity are enable()-time configuration
 * pinned by the run fingerprint.
 */
class AlertEngine
{
  public:
    /** ewma-dev guard against a ~0 EWMA denominator. */
    static constexpr double ewmaDevEps = 1e-9;

    AlertEngine() = default;

    /** Arm with @p rules; raise/clear log ring of @p logCapacity. */
    void enable(std::vector<AlertRule> rules,
                std::size_t logCapacity = 4096);

    /** Disarm and release all state. */
    void disable();

    /** True when armed. */
    bool enabled() const { return armed_; }

    /** The armed rule set. */
    const std::vector<AlertRule> &rules() const { return rules_; }

    /** Echo AlertRaised/AlertCleared events into @p t. */
    void attachTrace(EventTrace *t) { trace_ = t; }

    /** Invoked on every critical raise (rule, metric). */
    using EscalationFn =
        std::function<void(const AlertRule &, const std::string &)>;

    /** Attach the critical-severity escalation hook. */
    void setEscalation(EscalationFn fn) { escalate_ = std::move(fn); }

    /**
     * Register the alert.* stat cells and gauges, host-scoped so the
     * deterministic (StatScope::Sim) surfaces stay byte-identical
     * while armed. Call once after enable().
     */
    void registerStats(StatRegistry &reg);

    /** Evaluate one window (no-op when disarmed). */
    void observe(InstCount inst, const StatSnapshot &delta);

    /** Bound (rule, metric) instances (0 before the first window). */
    std::size_t instances() const { return insts_.size(); }

    /** Alerts currently raised. */
    std::size_t active() const;

    /** Raise events ever emitted. */
    std::uint64_t raised() const { return nRaised_; }

    /** Clear events ever emitted. */
    std::uint64_t cleared() const { return nCleared_; }

    /** Raise count of one severity. */
    std::uint64_t raisedBySeverity(AlertSeverity sev) const;

    /** Windows observed. */
    std::uint64_t windowsSeen() const { return windowIdx_; }

    /** One raise/clear log entry (alerts.jsonl line). */
    struct LogEntry
    {
        bool raisedEv = true; ///< raise (true) or clear (false)
        std::uint32_t rule = 0;
        std::uint64_t window = 0; ///< 0-based window index
        InstCount inst = 0;
        double value = 0.0;
        std::uint32_t windowsActive = 0; ///< clear events only
        std::string metric;
    };

    /** Held log entries, oldest first. */
    std::vector<LogEntry> log() const;

    /** Log entries overwritten by ring wraparound. */
    std::uint64_t logDropped() const { return logTotal_ - logHeld_; }

    /**
     * Append the alert.* final scalars (counts by severity, raise /
     * clear / active totals) into @p fin — the driver folds these
     * into the timeline document's "final" object for diff gating.
     */
    void appendFinal(std::map<std::string, double> &fin) const;

    /** One JSON object per held log entry (alerts.jsonl). */
    void writeJsonl(std::ostream &os) const;

    /** Checkpoint bindings, streaks, counters, and the log ring. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(); the rule count and log
     *  capacity must match the current enable() configuration. */
    void deserialize(Deserializer &d);

  private:
    /** One bound (rule, metric) evaluation instance. */
    struct Inst
    {
        std::uint32_t rule = 0;
        std::string metric;
        double prev = 0.0;   ///< previous window's value
        double ewma = 0.0;
        std::uint64_t seen = 0;    ///< windows evaluated
        std::uint32_t streak = 0;  ///< consecutive holds
        std::uint32_t activeFor = 0; ///< windows since raise (0 = clear)
        bool isActive = false;
    };

    std::vector<AlertRule> rules_;
    std::vector<Inst> insts_;
    std::vector<LogEntry> logRing_;
    std::size_t logCap_ = 0;
    std::size_t logHead_ = 0;
    std::size_t logHeld_ = 0;
    std::uint64_t logTotal_ = 0;
    std::uint64_t windowIdx_ = 0;
    std::uint64_t nRaised_ = 0;
    std::uint64_t nCleared_ = 0;
    std::array<std::uint64_t, 3> raisedBySev_{};
    bool armed_ = false;
    bool bound_ = false;
    EventTrace *trace_ = nullptr;
    EscalationFn escalate_;
    std::uint64_t *cellRaised_ = nullptr;   ///< registry-owned
    std::uint64_t *cellCleared_ = nullptr;  ///< registry-owned
    std::array<std::uint64_t *, 3> cellBySev_{}; ///< registry-owned

    bool holds(const AlertRule &r, const Inst &in, double v) const;
    void bind(const StatSnapshot &delta);
    void pushLog(const LogEntry &e);
};

} // namespace mct

#endif // MCT_COMMON_ALERTS_HH
