#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

void
RunningStat::push(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

void
RunningStat::reset()
{
    n = 0;
    mu = m2 = lo = hi = total = 0.0;
}

double
RunningStat::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

SlidingWindow::SlidingWindow(std::size_t capacity)
    : cap(capacity)
{
    if (cap == 0)
        mct_panic("SlidingWindow capacity must be positive");
}

void
SlidingWindow::push(double x)
{
    if (buf.size() == cap) {
        const double old = buf.front();
        buf.pop_front();
        sum -= old;
        sumSq -= old * old;
    }
    buf.push_back(x);
    sum += x;
    sumSq += x * x;
}

void
SlidingWindow::clear()
{
    buf.clear();
    sum = sumSq = 0.0;
}

void
SlidingWindow::serialize(Serializer &s) const
{
    s.putU64(cap);
    s.putU64(buf.size());
    for (const double x : buf)
        s.putF64(x);
    s.putF64(sum);
    s.putF64(sumSq);
}

void
SlidingWindow::deserialize(Deserializer &d)
{
    if (d.getU64() != cap)
        mct_panic("checkpoint SlidingWindow capacity mismatch");
    buf.clear();
    const std::uint64_t count = d.getU64();
    for (std::uint64_t i = 0; i < count && d.ok(); ++i)
        buf.push_back(d.getF64());
    sum = d.getF64();
    sumSq = d.getF64();
}

double
SlidingWindow::mean() const
{
    if (buf.empty())
        return 0.0;
    return sum / static_cast<double>(buf.size());
}

double
SlidingWindow::variance() const
{
    const std::size_t n = buf.size();
    if (n < 2)
        return 0.0;
    const double mu = mean();
    // Numerically this is fine for our bounded workload counters.
    const double ss = sumSq - static_cast<double>(n) * mu * mu;
    return std::max(0.0, ss / static_cast<double>(n - 1));
}

double
SlidingWindow::recentMean(std::size_t k) const
{
    k = std::min(k, buf.size());
    if (k == 0)
        return 0.0;
    double s = 0.0;
    for (std::size_t i = buf.size() - k; i < buf.size(); ++i)
        s += buf[i];
    return s / static_cast<double>(k);
}

double
SlidingWindow::recentVariance(std::size_t k) const
{
    k = std::min(k, buf.size());
    if (k < 2)
        return 0.0;
    const double mu = recentMean(k);
    double ss = 0.0;
    for (std::size_t i = buf.size() - k; i < buf.size(); ++i)
        ss += (buf[i] - mu) * (buf[i] - mu);
    return ss / static_cast<double>(k - 1);
}

double
SlidingWindow::olderMean(std::size_t k) const
{
    if (buf.size() <= k)
        return 0.0;
    const std::size_t n = buf.size() - k;
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        s += buf[i];
    return s / static_cast<double>(n);
}

double
SlidingWindow::olderVariance(std::size_t k) const
{
    if (buf.size() < k + 2)
        return 0.0;
    const std::size_t n = buf.size() - k;
    const double mu = olderMean(k);
    double ss = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        ss += (buf[i] - mu) * (buf[i] - mu);
    return ss / static_cast<double>(n - 1);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            mct_panic("geomean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
welchTScore(double mean1, double var1, std::size_t n1,
            double mean2, double var2, std::size_t n2)
{
    if (n1 == 0 || n2 == 0)
        return 0.0;
    const double se2 = var1 / static_cast<double>(n1) +
                       var2 / static_cast<double>(n2);
    const double diff = std::fabs(mean1 - mean2);
    if (se2 <= 0.0) {
        // Both windows are constant: any difference in means is
        // infinitely significant; report a saturating score.
        return diff > 0.0 ? 1e9 : 0.0;
    }
    return diff / std::sqrt(se2);
}

} // namespace mct
