/**
 * @file
 * Declarative fault plans for the fault-injection harness.
 *
 * A plan is an ordered list of FaultSpec entries, each describing one
 * fault class, the instruction window in which it is armed, and
 * per-kind parameters (magnitude, firing probability, target bank).
 * Plans are parsed from a compact grammar:
 *
 *     spec ( ';' spec )*
 *     spec := kind [ '@' start [ '+' duration ] ]
 *                  [ ':' key '=' value ( ',' key '=' value )* ]
 *
 * where instruction counts accept k/m/g suffixes (1e3/1e6/1e9), e.g.
 *
 *     latency_drift@500k+1m:mag=3;clock_skew@2m:mag=8
 *
 * Parsing never aborts: errors come back as a typed result so callers
 * (CLI, tests) can degrade to an empty plan or report the problem.
 * A handful of named built-in plans ("drift", "storm", ...) cover the
 * common scenarios and are what CI exercises.
 */

#ifndef MCT_COMMON_FAULT_PLAN_HH
#define MCT_COMMON_FAULT_PLAN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mct
{

/** The fault classes the injector knows how to produce. */
enum class FaultKind
{
    /** Scale every bank's read/write latency (aging, thermal drift). */
    LatencyDrift,

    /** One bank (or all) gets slower *and* wears faster. */
    BankDegrade,

    /** Sampled window metrics return NaN/Inf/outlier values. */
    CounterCorrupt,

    /** Predictor outputs are replaced with garbage ratios. */
    PredictorGarbage,

    /** The on-disk sweep cache is truncated/scrambled before load. */
    SweepCacheCorrupt,

    /** The wear-quota governor sees a skewed clock. */
    WearClockSkew,

    /** The newest on-disk checkpoint is bit-flipped/truncated. */
    CkptCorrupt,
};

/** Number of FaultKind values (keep in sync with the enum). */
constexpr std::size_t numFaultKinds = 7;

/** Grammar name of a fault kind ("latency_drift", ...). */
const char *toString(FaultKind kind);

/** One armed fault: a kind, an instruction window, and parameters. */
struct FaultSpec
{
    FaultKind kind = FaultKind::LatencyDrift;

    /** First instruction at which the fault is armed. */
    InstCount startInst = 0;

    /** Armed window length; 0 means "until the end of the run". */
    InstCount durationInsts = 0;

    /**
     * Per-opportunity firing probability for stochastic kinds
     * (CounterCorrupt, PredictorGarbage). Window kinds ignore it.
     */
    double prob = 1.0;

    /**
     * Kind-specific magnitude: latency/wear multiplier for
     * LatencyDrift/BankDegrade, outlier scale for CounterCorrupt,
     * garbage ratio scale for PredictorGarbage, clock multiplier for
     * WearClockSkew.
     */
    double magnitude = 2.0;

    /** Target bank for BankDegrade; -1 targets every bank. */
    int bank = -1;

    /** Whether the fault is armed at the given instruction count. */
    bool
    activeAt(InstCount inst) const
    {
        if (inst < startInst)
            return false;
        return durationInsts == 0 || inst < startInst + durationInsts;
    }
};

/** An ordered collection of fault specs. */
struct FaultPlan
{
    std::vector<FaultSpec> specs;

    bool empty() const { return specs.empty(); }

    /** True when any spec (active or not) has the given kind. */
    bool has(FaultKind kind) const;

    /** Round-trippable grammar string describing the plan. */
    std::string summary() const;
};

/** Typed parse result; @c ok is false iff @c error is non-empty. */
struct [[nodiscard]] FaultPlanParse
{
    bool ok = false;
    FaultPlan plan;
    std::string error;
};

/**
 * Parse @p text as either a built-in plan name or the spec grammar.
 * Never aborts; malformed input yields ok=false plus a message naming
 * the offending token.
 */
[[nodiscard]] FaultPlanParse parseFaultPlan(const std::string &text);

/** Names of the built-in plans, in presentation order. */
const std::vector<std::string> &builtinFaultPlanNames();

/** Grammar text of a built-in plan; empty string if unknown. */
std::string builtinFaultPlanText(const std::string &name);

} // namespace mct

#endif // MCT_COMMON_FAULT_PLAN_HH
