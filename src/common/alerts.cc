#include "common/alerts.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

const char *
toString(AlertCondition cond)
{
    switch (cond) {
      case AlertCondition::Above:
        return "above";
      case AlertCondition::Below:
        return "below";
      case AlertCondition::EwmaDev:
        return "ewma-dev";
      case AlertCondition::Stuck:
        return "stuck";
      case AlertCondition::Nonfinite:
        return "nonfinite";
    }
    return "unknown";
}

const char *
toString(AlertSeverity sev)
{
    switch (sev) {
      case AlertSeverity::Info:
        return "info";
      case AlertSeverity::Warn:
        return "warn";
      case AlertSeverity::Critical:
        return "critical";
    }
    return "unknown";
}

// --------------------------------------------------------------------
// alerts.txt parsing
// --------------------------------------------------------------------

namespace
{

std::string
trimWs(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return {};
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Split a trimmed line into its first token and the trimmed rest. */
void
splitToken(const std::string &line, std::string &tok,
           std::string &rest)
{
    const std::size_t sp = line.find_first_of(" \t");
    if (sp == std::string::npos) {
        tok = line;
        rest.clear();
        return;
    }
    tok = line.substr(0, sp);
    rest = trimWs(line.substr(sp + 1));
}

bool
isSingleToken(const std::string &s)
{
    return !s.empty() && s.find_first_of(" \t") == std::string::npos;
}

bool
conditionNeedsThreshold(AlertCondition c)
{
    return c == AlertCondition::Above || c == AlertCondition::Below ||
           c == AlertCondition::EwmaDev;
}

} // namespace

bool
parseAlerts(const std::string &text, std::vector<AlertRule> &out,
            std::string &err)
{
    out.clear();
    std::vector<AlertRule> rules;
    bool haveMetric = false, haveCond = false, haveThreshold = false;
    int ruleLine = 0;

    const auto finishRule = [&]() -> bool {
        if (rules.empty())
            return true;
        const AlertRule &r = rules.back();
        std::ostringstream os;
        if (!haveMetric)
            os << "alert '" << r.name << "' (line " << ruleLine
               << ") has no metric";
        else if (!haveCond)
            os << "alert '" << r.name << "' (line " << ruleLine
               << ") has no condition";
        else if (conditionNeedsThreshold(r.cond) && !haveThreshold)
            os << "alert '" << r.name << "' (line " << ruleLine
               << "): condition '" << toString(r.cond)
               << "' requires a threshold";
        else if (!conditionNeedsThreshold(r.cond) && haveThreshold)
            os << "alert '" << r.name << "' (line " << ruleLine
               << "): condition '" << toString(r.cond)
               << "' takes no threshold";
        else
            return true;
        err = os.str();
        return false;
    };

    std::istringstream is(text);
    std::string raw;
    int lineNo = 0;
    while (std::getline(is, raw)) {
        ++lineNo;
        const std::size_t hash = raw.find('#');
        const std::string line =
            trimWs(hash == std::string::npos ? raw
                                             : raw.substr(0, hash));
        if (line.empty())
            continue;
        std::string tok, rest;
        splitToken(line, tok, rest);
        std::ostringstream os;
        if (tok == "alert") {
            if (!finishRule())
                return false;
            if (!isSingleToken(rest)) {
                os << "line " << lineNo
                   << ": 'alert' needs a single-token name";
                err = os.str();
                return false;
            }
            for (const AlertRule &r : rules) {
                if (r.name == rest) {
                    os << "line " << lineNo << ": duplicate alert '"
                       << rest << "'";
                    err = os.str();
                    return false;
                }
            }
            rules.emplace_back();
            rules.back().name = rest;
            ruleLine = lineNo;
            haveMetric = haveCond = haveThreshold = false;
            continue;
        }
        if (rules.empty()) {
            os << "line " << lineNo << ": '" << tok
               << "' outside an alert block";
            err = os.str();
            return false;
        }
        AlertRule &r = rules.back();
        if (tok == "metric") {
            if (!isSingleToken(rest)) {
                os << "line " << lineNo
                   << ": 'metric' needs a single glob";
                err = os.str();
                return false;
            }
            r.glob = rest;
            haveMetric = true;
        } else if (tok == "condition") {
            if (rest == "above")
                r.cond = AlertCondition::Above;
            else if (rest == "below")
                r.cond = AlertCondition::Below;
            else if (rest == "ewma-dev")
                r.cond = AlertCondition::EwmaDev;
            else if (rest == "stuck")
                r.cond = AlertCondition::Stuck;
            else if (rest == "nonfinite")
                r.cond = AlertCondition::Nonfinite;
            else {
                os << "line " << lineNo << ": unknown condition '"
                   << rest << "'";
                err = os.str();
                return false;
            }
            haveCond = true;
        } else if (tok == "threshold") {
            char *end = nullptr;
            const double v = std::strtod(rest.c_str(), &end);
            if (rest.empty() || end != rest.c_str() + rest.size() ||
                !std::isfinite(v)) {
                os << "line " << lineNo << ": bad threshold '" << rest
                   << "'";
                err = os.str();
                return false;
            }
            r.threshold = v;
            haveThreshold = true;
        } else if (tok == "windows") {
            char *end = nullptr;
            const long v = std::strtol(rest.c_str(), &end, 10);
            if (rest.empty() || end != rest.c_str() + rest.size() ||
                v < 1) {
                os << "line " << lineNo
                   << ": 'windows' needs an integer >= 1, got '"
                   << rest << "'";
                err = os.str();
                return false;
            }
            r.windows = static_cast<std::uint32_t>(v);
        } else if (tok == "severity") {
            if (rest == "info")
                r.severity = AlertSeverity::Info;
            else if (rest == "warn")
                r.severity = AlertSeverity::Warn;
            else if (rest == "critical")
                r.severity = AlertSeverity::Critical;
            else {
                os << "line " << lineNo << ": unknown severity '"
                   << rest << "'";
                err = os.str();
                return false;
            }
        } else {
            os << "line " << lineNo << ": unknown keyword '" << tok
               << "'";
            err = os.str();
            return false;
        }
    }
    if (!finishRule())
        return false;
    out = std::move(rules);
    return true;
}

bool
loadAlerts(const std::string &path, std::vector<AlertRule> &out,
           std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = "cannot open alerts file '" + path + "'";
        return false;
    }
    std::ostringstream os;
    os << is.rdbuf();
    return parseAlerts(os.str(), out, err);
}

std::string
canonicalAlertRules(const std::vector<AlertRule> &rules)
{
    std::ostringstream os;
    os.precision(17);
    for (const AlertRule &r : rules) {
        os << r.name << '|' << r.glob << '|' << toString(r.cond) << '|'
           << r.threshold << '|' << r.windows << '|'
           << toString(r.severity) << ';';
    }
    return os.str();
}

// --------------------------------------------------------------------
// AlertEngine
// --------------------------------------------------------------------

void
AlertEngine::enable(std::vector<AlertRule> rules,
                    std::size_t logCapacity)
{
    if (logCapacity == 0)
        mct_fatal("AlertEngine::enable requires a nonzero log "
                  "capacity");
    rules_ = std::move(rules);
    insts_.clear();
    logRing_.assign(logCapacity, LogEntry{});
    logCap_ = logCapacity;
    logHead_ = 0;
    logHeld_ = 0;
    logTotal_ = 0;
    windowIdx_ = 0;
    nRaised_ = 0;
    nCleared_ = 0;
    raisedBySev_.fill(0);
    armed_ = true;
    bound_ = false;
}

void
AlertEngine::disable()
{
    rules_.clear();
    insts_.clear();
    logRing_.clear();
    logRing_.shrink_to_fit();
    logCap_ = 0;
    logHead_ = 0;
    logHeld_ = 0;
    logTotal_ = 0;
    windowIdx_ = 0;
    nRaised_ = 0;
    nCleared_ = 0;
    raisedBySev_.fill(0);
    armed_ = false;
    bound_ = false;
}

void
AlertEngine::registerStats(StatRegistry &reg)
{
    cellRaised_ = &reg.addCounterCell(
        "alert.raised", "alert raise events emitted by the engine");
    cellCleared_ = &reg.addCounterCell(
        "alert.cleared", "alert clear events emitted by the engine");
    cellBySev_[0] = &reg.addCounterCell(
        "alert.count.info", "info-severity alerts raised");
    cellBySev_[1] = &reg.addCounterCell(
        "alert.count.warn", "warn-severity alerts raised");
    cellBySev_[2] = &reg.addCounterCell(
        "alert.count.critical",
        "critical-severity alerts raised (escalated to the MCT "
        "health ladder)");
    reg.addGauge(
        "alert.active",
        [this] { return static_cast<double>(active()); },
        "alerts currently raised");
    reg.addGauge(
        "alert.rules",
        [this] { return static_cast<double>(rules_.size()); },
        "armed alert rules");
    // Host-scoped: evaluation is deterministic, but the counters must
    // never perturb the byte-identical Sim snapshot surfaces, and an
    // armed run's --stats-json must match a disarmed run's.
    for (const char *path :
         {"alert.raised", "alert.cleared", "alert.count.info",
          "alert.count.warn", "alert.count.critical", "alert.active",
          "alert.rules"})
        reg.markHost(path);
}

bool
AlertEngine::holds(const AlertRule &r, const Inst &in, double v) const
{
    switch (r.cond) {
      case AlertCondition::Above:
        return v > r.threshold;
      case AlertCondition::Below:
        return v < r.threshold;
      case AlertCondition::EwmaDev:
        // Relative deviation from the pre-update EWMA; never fires on
        // the first window (no history to deviate from).
        return in.seen > 0 &&
               std::abs(v - in.ewma) >
                   r.threshold * std::max(std::abs(in.ewma),
                                          ewmaDevEps);
      case AlertCondition::Stuck:
        return in.seen > 0 && v == in.prev;
      case AlertCondition::Nonfinite:
        return !std::isfinite(v);
    }
    return false;
}

void
AlertEngine::bind(const StatSnapshot &delta)
{
    // First matching rule wins per metric, mirroring thresholds.txt;
    // snapshot maps are sorted, so binding order is deterministic.
    for (const auto &[path, v] : delta) {
        for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
            if (!statGlobMatch(rules_[ri].glob, path))
                continue;
            Inst in;
            in.rule = static_cast<std::uint32_t>(ri);
            in.metric = path;
            insts_.push_back(std::move(in));
            break;
        }
    }
    bound_ = true;
}

void
AlertEngine::pushLog(const LogEntry &e)
{
    logRing_[logHead_] = e;
    logHead_ = logHead_ + 1 == logCap_ ? 0 : logHead_ + 1;
    logHeld_ = std::min(logHeld_ + 1, logCap_);
    ++logTotal_;
}

void
AlertEngine::observe(InstCount inst, const StatSnapshot &delta)
{
    if (!armed_)
        return;
    if (!bound_)
        bind(delta);
    for (Inst &in : insts_) {
        const AlertRule &r = rules_[in.rule];
        const auto it = delta.find(in.metric);
        const double v = it != delta.end() ? it->second.num : 0.0;
        const bool h = holds(r, in, v);
        in.streak = h ? in.streak + 1 : 0;
        if (!in.isActive && in.streak >= r.windows) {
            in.isActive = true;
            in.activeFor = 1;
            ++nRaised_;
            ++raisedBySev_[static_cast<std::size_t>(r.severity)];
            if (cellRaised_)
                ++*cellRaised_;
            if (cellBySev_[static_cast<std::size_t>(r.severity)])
                ++*cellBySev_[static_cast<std::size_t>(r.severity)];
            LogEntry e;
            e.raisedEv = true;
            e.rule = in.rule;
            e.window = windowIdx_;
            e.inst = inst;
            e.value = v;
            e.metric = in.metric;
            pushLog(e);
            if (trace_)
                trace_->record(
                    TraceEventType::AlertRaised,
                    static_cast<double>(in.rule),
                    static_cast<double>(r.severity), v);
            if (r.severity == AlertSeverity::Critical && escalate_)
                escalate_(r, in.metric);
        } else if (in.isActive) {
            if (!h) {
                ++nCleared_;
                if (cellCleared_)
                    ++*cellCleared_;
                LogEntry e;
                e.raisedEv = false;
                e.rule = in.rule;
                e.window = windowIdx_;
                e.inst = inst;
                e.value = v;
                e.windowsActive = in.activeFor;
                e.metric = in.metric;
                pushLog(e);
                if (trace_)
                    trace_->record(
                        TraceEventType::AlertCleared,
                        static_cast<double>(in.rule),
                        static_cast<double>(r.severity),
                        static_cast<double>(in.activeFor));
                in.isActive = false;
                in.activeFor = 0;
            } else {
                ++in.activeFor;
            }
        }
        if (in.seen == 0)
            in.ewma = v;
        else
            in.ewma = MetricTimeline::ewmaAlpha * v +
                      (1.0 - MetricTimeline::ewmaAlpha) * in.ewma;
        in.prev = v;
        ++in.seen;
    }
    ++windowIdx_;
}

std::size_t
AlertEngine::active() const
{
    std::size_t n = 0;
    for (const Inst &in : insts_)
        n += in.isActive ? 1 : 0;
    return n;
}

std::uint64_t
AlertEngine::raisedBySeverity(AlertSeverity sev) const
{
    return raisedBySev_[static_cast<std::size_t>(sev)];
}

std::vector<AlertEngine::LogEntry>
AlertEngine::log() const
{
    std::vector<LogEntry> out;
    out.reserve(logHeld_);
    const std::size_t start = logHeld_ == logCap_ ? logHead_ : 0;
    for (std::size_t i = 0; i < logHeld_; ++i)
        out.push_back(logRing_[(start + i) % (logCap_ ? logCap_ : 1)]);
    return out;
}

void
AlertEngine::appendFinal(std::map<std::string, double> &fin) const
{
    fin["alert.rules"] = static_cast<double>(rules_.size());
    fin["alert.instances"] = static_cast<double>(insts_.size());
    fin["alert.windows"] = static_cast<double>(windowIdx_);
    fin["alert.raised"] = static_cast<double>(nRaised_);
    fin["alert.cleared"] = static_cast<double>(nCleared_);
    fin["alert.active"] = static_cast<double>(active());
    fin["alert.count.info"] = static_cast<double>(raisedBySev_[0]);
    fin["alert.count.warn"] = static_cast<double>(raisedBySev_[1]);
    fin["alert.count.critical"] =
        static_cast<double>(raisedBySev_[2]);
    fin["alert.log_dropped"] = static_cast<double>(logDropped());
}

void
AlertEngine::writeJsonl(std::ostream &os) const
{
    for (const LogEntry &e : log()) {
        const AlertRule &r = rules_[e.rule];
        JsonWriter w(os);
        w.beginObject();
        w.kv("ev", e.raisedEv ? "alert_raised" : "alert_cleared");
        w.kv("window", e.window);
        w.kv("inst", static_cast<std::uint64_t>(e.inst));
        w.kv("rule", r.name);
        w.kv("metric", e.metric);
        w.kv("condition", toString(r.cond));
        w.kv("severity", toString(r.severity));
        w.kv("value", e.value);
        if (!e.raisedEv)
            w.kv("windows_active",
                 static_cast<std::uint64_t>(e.windowsActive));
        w.endObject();
        os << '\n';
    }
}

void
AlertEngine::serialize(Serializer &s) const
{
    s.putBool(armed_);
    s.putU64(rules_.size());
    s.putU64(logCap_);
    s.putBool(bound_);
    s.putU64(windowIdx_);
    s.putU64(nRaised_);
    s.putU64(nCleared_);
    for (const std::uint64_t n : raisedBySev_)
        s.putU64(n);
    s.putU64(insts_.size());
    for (const Inst &in : insts_) {
        s.putU32(in.rule);
        s.putStr(in.metric);
        s.putF64(in.prev);
        s.putF64(in.ewma);
        s.putU64(in.seen);
        s.putU32(in.streak);
        s.putU32(in.activeFor);
        s.putBool(in.isActive);
    }
    s.putU64(logHead_);
    s.putU64(logHeld_);
    s.putU64(logTotal_);
    for (const LogEntry &e : logRing_) {
        s.putBool(e.raisedEv);
        s.putU32(e.rule);
        s.putU64(e.window);
        s.putU64(e.inst);
        s.putF64(e.value);
        s.putU32(e.windowsActive);
        s.putStr(e.metric);
    }
}

void
AlertEngine::deserialize(Deserializer &d)
{
    if (d.getBool() != armed_ || d.getU64() != rules_.size() ||
        d.getU64() != logCap_)
        mct_panic("checkpoint AlertEngine configuration mismatch");
    bound_ = d.getBool();
    windowIdx_ = d.getU64();
    nRaised_ = d.getU64();
    nCleared_ = d.getU64();
    for (std::uint64_t &n : raisedBySev_)
        n = d.getU64();
    insts_.resize(d.getU64());
    for (Inst &in : insts_) {
        in.rule = d.getU32();
        in.metric = d.getStr();
        in.prev = d.getF64();
        in.ewma = d.getF64();
        in.seen = d.getU64();
        in.streak = d.getU32();
        in.activeFor = d.getU32();
        in.isActive = d.getBool();
    }
    logHead_ = static_cast<std::size_t>(d.getU64());
    logHeld_ = static_cast<std::size_t>(d.getU64());
    logTotal_ = d.getU64();
    for (LogEntry &e : logRing_) {
        e.raisedEv = d.getBool();
        e.rule = d.getU32();
        e.window = d.getU64();
        e.inst = d.getU64();
        e.value = d.getF64();
        e.windowsActive = d.getU32();
        e.metric = d.getStr();
    }
}

} // namespace mct
