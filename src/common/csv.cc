#include "common/csv.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace mct
{

void
CsvFile::row(std::vector<std::string> cells)
{
    rowsData.push_back(std::move(cells));
}

void
CsvFile::numericRow(const std::vector<double> &cells)
{
    std::vector<std::string> out;
    out.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream os;
        os.precision(17);
        os << v;
        out.push_back(os.str());
    }
    rowsData.push_back(std::move(out));
}

namespace
{

/** Quote a cell RFC-4180 style when its content requires it. */
void
writeCell(std::ostream &os, const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
        os << cell;
        return;
    }
    os << '"';
    for (char c : cell) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

} // namespace

bool
CsvFile::save(const std::string &path) const
{
    AtomicFile file(path);
    std::ostream &os = file.stream();
    for (const auto &r : rowsData) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i)
                os << ',';
            writeCell(os, r[i]);
        }
        os << '\n';
    }
    return file.commit();
}

bool
CsvFile::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return false;
    rowsData.clear();

    // Character-level parser: a quoted cell may span physical lines,
    // so rows end at newlines *outside* quotes only.
    std::vector<std::string> cells;
    std::string cell;
    bool inQuotes = false;
    bool cellStarted = false; // row has content (even an empty cell)
    char c;
    while (is.get(c)) {
        if (inQuotes) {
            if (c == '"') {
                if (is.peek() == '"') {
                    is.get(c);
                    cell += '"';
                } else {
                    inQuotes = false;
                }
            } else {
                cell += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            inQuotes = true;
            cellStarted = true;
            break;
          case ',':
            cells.push_back(std::move(cell));
            cell.clear();
            cellStarted = true;
            break;
          case '\r':
            break; // swallow CR of CRLF endings
          case '\n':
            if (cellStarted || !cell.empty()) {
                cells.push_back(std::move(cell));
                rowsData.push_back(std::move(cells));
            }
            cells.clear();
            cell.clear();
            cellStarted = false;
            break;
          default:
            cell += c;
            cellStarted = true;
            break;
        }
    }
    if (cellStarted || !cell.empty()) { // file without trailing newline
        cells.push_back(std::move(cell));
        rowsData.push_back(std::move(cells));
    }
    return true;
}

double
CsvFile::asDouble(const std::string &cell)
{
    char *end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str())
        mct_fatal("CSV cell is not numeric: '", cell, "'");
    return v;
}

bool
CsvFile::tryDouble(const std::string &cell, double &out)
{
    char *end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str())
        return false;
    while (*end == ' ' || *end == '\t')
        ++end;
    if (*end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace mct
