#include "common/csv.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mct
{

void
CsvFile::row(std::vector<std::string> cells)
{
    rowsData.push_back(std::move(cells));
}

void
CsvFile::numericRow(const std::vector<double> &cells)
{
    std::vector<std::string> out;
    out.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream os;
        os.precision(17);
        os << v;
        out.push_back(os.str());
    }
    rowsData.push_back(std::move(out));
}

bool
CsvFile::save(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    for (const auto &r : rowsData) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i)
                os << ',';
            os << r[i];
        }
        os << '\n';
    }
    return static_cast<bool>(os);
}

bool
CsvFile::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return false;
    rowsData.clear();
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> cells;
        std::string cell;
        std::istringstream ls(line);
        while (std::getline(ls, cell, ','))
            cells.push_back(cell);
        rowsData.push_back(std::move(cells));
    }
    return true;
}

double
CsvFile::asDouble(const std::string &cell)
{
    char *end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str())
        mct_fatal("CSV cell is not numeric: '", cell, "'");
    return v;
}

} // namespace mct
