/**
 * @file
 * Minimal JSON emission helpers for the machine-readable telemetry
 * surfaces (stats snapshots, event traces, bench self-profiles). Only
 * writing is supported — the simulator never consumes JSON — and the
 * output is deterministic: keys are emitted in the order given and
 * doubles use a fixed shortest-round-trip format.
 */

#ifndef MCT_COMMON_JSON_HH
#define MCT_COMMON_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace mct
{

/** Escape a string for inclusion inside JSON double quotes. */
std::string jsonEscape(const std::string &s);

/**
 * Format a double as a JSON number. NaN/Inf have no JSON spelling and
 * become the literal `null`; each occurrence bumps the process-wide
 * counter below so corrupted telemetry is visible rather than masked.
 */
std::string jsonNumber(double v);

/** Non-finite values encountered by jsonNumber since the last reset. */
std::uint64_t jsonNonfiniteCount();

/** Reset the non-finite counter (tests and fresh runs). */
void resetJsonNonfiniteCount();

/** Restore the non-finite counter from a checkpoint so the resumed
 *  run's stats.nonfinite matches the uninterrupted run's. */
void restoreJsonNonfiniteCount(std::uint64_t value);

/**
 * Streaming writer for a nesting of JSON objects and arrays. The
 * caller supplies structure through begin/end calls; the writer
 * inserts commas and key quoting. No pretty-printing beyond newlines
 * between top-level members (jq handles the rest).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : out(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a keyed member inside an object (value follows). */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

    /** Shorthand: key followed by a scalar value. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

  private:
    std::ostream &out;
    /** Whether a comma is owed before the next element, per depth. */
    std::string pending; // stack of '0'/'1' flags, one char per depth
    bool afterKey = false;

    void separate();
};

} // namespace mct

#endif // MCT_COMMON_JSON_HH
