/**
 * @file
 * Binary serialization codec for checkpoint/restore. Fixed-width
 * little-endian integers, bit-pattern doubles, and length-prefixed
 * strings make the byte stream deterministic across runs, which the
 * resume machinery depends on (a resumed run must re-produce the
 * exact bytes an uninterrupted run would have written).
 *
 * The stream carries no tags: the reader consumes exactly the bytes
 * the writer produced, in order. mct_lint's serialize-contract
 * builtin statically enforces that every serialize/deserialize pair
 * stays in member-for-member, order-for-order lockstep, with
 * deliberate gaps declared in the rules.txt skip manifest (see
 * docs/static-analysis.md).
 */

#ifndef MCT_COMMON_SERIALIZE_HH
#define MCT_COMMON_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mct
{

/** 64-bit FNV-1a over a byte range; @p seed chains partial digests. */
std::uint64_t fnv1a(const void *data, std::size_t size,
                    std::uint64_t seed = 14695981039346656037ULL);

/**
 * Append-only binary encoder. All integers are written little-endian
 * at fixed width; doubles are written as their IEEE-754 bit pattern.
 */
class Serializer
{
  public:
    void putU8(std::uint8_t v) { buf.push_back(static_cast<char>(v)); }
    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v) { putU64(static_cast<std::uint64_t>(v)); }
    void putF64(double v);
    void putStr(std::string_view v);

    /** The encoded bytes so far. */
    const std::string &data() const { return buf; }

    std::size_t size() const { return buf.size(); }

  private:
    std::string buf;
};

/**
 * Bounds-checked decoder over a byte range. A read past the end marks
 * the stream failed and returns zero values from then on; callers
 * check ok() once after decoding a section. The checkpoint loader
 * verifies the checksum before any decoding, so a failed stream means
 * a format bug, not file corruption.
 */
class Deserializer
{
  public:
    Deserializer(const void *data, std::size_t size)
        : p(static_cast<const unsigned char *>(data)), n(size)
    {}

    explicit Deserializer(std::string_view bytes)
        : Deserializer(bytes.data(), bytes.size())
    {}

    std::uint8_t getU8();
    bool getBool() { return getU8() != 0; }
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64() { return static_cast<std::int64_t>(getU64()); }
    double getF64();
    std::string getStr();

    /** False once any read ran past the end of the buffer. */
    bool ok() const { return good; }

    /** True when every byte has been consumed (and no read failed). */
    bool atEnd() const { return good && pos == n; }

    std::size_t remaining() const { return n - pos; }

  private:
    const unsigned char *p;
    std::size_t n;
    std::size_t pos = 0;
    bool good = true;

    /** Reserve @p count bytes; returns nullptr and fails on underrun. */
    const unsigned char *take(std::size_t count);
};

} // namespace mct

#endif // MCT_COMMON_SERIALIZE_HH
