/**
 * @file
 * Small statistics utilities used throughout the simulator and the
 * learning framework: running moments, windowed history for the phase
 * detector, and scalar summaries (geomean etc.).
 */

#ifndef MCT_COMMON_STATS_HH
#define MCT_COMMON_STATS_HH

#include <cstddef>
#include <deque>
#include <vector>

namespace mct
{

class Serializer;
class Deserializer;

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void push(double x);

    /** Remove all observations. */
    void reset();

    /** Number of observations so far. */
    std::size_t count() const { return n; }

    /** Mean of the observations (0 if empty). */
    double mean() const { return n ? mu : 0.0; }

    /** Unbiased sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (0 if empty). */
    double min() const { return n ? lo : 0.0; }

    /** Largest observation (0 if empty). */
    double max() const { return n ? hi : 0.0; }

    /** Sum of the observations. */
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Fixed-capacity sliding window of scalar observations with O(1)
 * mean/variance queries; backs the phase detector's history record.
 */
class SlidingWindow
{
  public:
    /** Construct with the given maximum length (must be > 0). */
    explicit SlidingWindow(std::size_t capacity);

    /** Append one observation, evicting the oldest when full. */
    void push(double x);

    /** Discard all contents. */
    void clear();

    /** Current number of stored observations. */
    std::size_t size() const { return buf.size(); }

    /** True when size() == capacity. */
    bool full() const { return buf.size() == cap; }

    /** Mean over the stored observations (0 if empty). */
    double mean() const;

    /** Unbiased variance over the stored observations. */
    double variance() const;

    /** Mean over only the most recent k observations. */
    double recentMean(std::size_t k) const;

    /** Unbiased variance over only the most recent k observations. */
    double recentVariance(std::size_t k) const;

    /** Mean over everything except the most recent k observations. */
    double olderMean(std::size_t k) const;

    /** Unbiased variance over everything except the most recent k. */
    double olderVariance(std::size_t k) const;

    /** Read-only access to the underlying samples, oldest first. */
    const std::deque<double> &samples() const { return buf; }

    /** Checkpoint contents and running sums (capacity must match on
     *  restore; it is a constructor parameter). */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    std::size_t cap;
    std::deque<double> buf;
    double sum = 0.0;
    double sumSq = 0.0;
};

/** Geometric mean of strictly positive values (0 if empty). */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean (0 if empty). */
double mean(const std::vector<double> &xs);

/**
 * Welch's two-sided t statistic for the difference in means of two
 * samples summarized by (mean, variance, count). Returns the absolute
 * t score; degenerate inputs (zero variance or tiny counts) yield 0
 * when the means agree and a large score when they do not.
 */
double welchTScore(double mean1, double var1, std::size_t n1,
                   double mean2, double var2, std::size_t n2);

} // namespace mct

#endif // MCT_COMMON_STATS_HH
