#include "common/stat_merge.hh"

#include <algorithm>
#include <set>

#include "common/stats.hh"

namespace mct
{

namespace
{

/** Three-way comparison of two StatValues (for ordering only). */
int
cmpValue(const StatValue &a, const StatValue &b)
{
    if (a.kind != b.kind)
        return a.kind < b.kind ? -1 : 1;
    if (a.num != b.num)
        return a.num < b.num ? -1 : 1;
    if (a.count != b.count)
        return a.count < b.count ? -1 : 1;
    if (a.buckets != b.buckets)
        return a.buckets < b.buckets ? -1 : 1;
    return 0;
}

/** Lexicographic three-way comparison of two snapshots. */
int
cmpSnapshot(const StatSnapshot &a, const StatSnapshot &b)
{
    auto ai = a.begin(), bi = b.begin();
    for (; ai != a.end() && bi != b.end(); ++ai, ++bi) {
        if (ai->first != bi->first)
            return ai->first < bi->first ? -1 : 1;
        if (const int c = cmpValue(ai->second, bi->second); c != 0)
            return c;
    }
    if (a.size() != b.size())
        return a.size() < b.size() ? -1 : 1;
    return 0;
}

} // namespace

void
StatMerge::add(std::string id, StatSnapshot snap)
{
    inputs.push_back(Input{std::move(id), std::move(snap)});
}

StatMerge::Result
StatMerge::merge() const
{
    // Canonical input order: by id, with a full content comparison
    // breaking ties, so even duplicate ids cannot let the caller's
    // add() order leak into floating-point reduction order.
    std::vector<const Input *> order;
    order.reserve(inputs.size());
    for (const Input &in : inputs)
        order.push_back(&in);
    std::sort(order.begin(), order.end(),
              [](const Input *a, const Input *b) {
                  if (a->id != b->id)
                      return a->id < b->id;
                  return cmpSnapshot(a->snap, b->snap) < 0;
              });

    // Sorted union of every input's key set.
    std::set<std::string> keys;
    for (const Input *in : order)
        for (const auto &[path, v] : in->snap)
            keys.insert(path);

    Result out;
    out.runs = inputs.size();
    for (const std::string &path : keys) {
        // The key's kind comes from the first run that carries it;
        // later runs with a conflicting kind contribute their scalar
        // view (num) so corrupt inputs degrade instead of crashing.
        StatKind kind = StatKind::Gauge;
        bool kindSet = false;
        for (const Input *in : order) {
            const auto it = in->snap.find(path);
            if (it == in->snap.end())
                continue;
            kind = it->second.kind;
            kindSet = true;
            break;
        }
        if (!kindSet)
            continue;

        StatValue mv;
        mv.kind = kind;
        if (kind == StatKind::Gauge) {
            RunningStat rs;
            for (const Input *in : order) {
                const auto it = in->snap.find(path);
                if (it != in->snap.end())
                    rs.push(it->second.num);
            }
            mv.num = rs.mean();
            GaugeCells cells;
            cells.count = rs.count();
            cells.mean = rs.mean();
            cells.min = rs.min();
            cells.max = rs.max();
            cells.stddev = rs.stddev();
            out.gauges.emplace(path, cells);
        } else if (kind == StatKind::Counter) {
            for (const Input *in : order) {
                const auto it = in->snap.find(path);
                if (it != in->snap.end())
                    mv.num += it->second.num;
            }
        } else {
            for (const Input *in : order) {
                const auto it = in->snap.find(path);
                if (it == in->snap.end())
                    continue;
                const StatValue &v = it->second;
                mv.num += v.num;
                mv.count += v.count;
                if (v.buckets.size() > mv.buckets.size())
                    mv.buckets.resize(v.buckets.size(), 0);
                for (std::size_t i = 0; i < v.buckets.size(); ++i)
                    mv.buckets[i] += v.buckets[i];
            }
            while (!mv.buckets.empty() && mv.buckets.back() == 0)
                mv.buckets.pop_back();
        }
        out.merged.emplace(path, std::move(mv));
    }
    return out;
}

} // namespace mct
