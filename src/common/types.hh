/**
 * @file
 * Fundamental simulation types and unit constants.
 *
 * Time is measured in Ticks of one picosecond, like gem5. The simulated
 * CPU runs at 2 GHz (500 ticks per cycle) and the NVM main memory at
 * 400 MHz (2500 ticks per cycle), matching Tables 8 and 9 of the paper.
 */

#ifndef MCT_COMMON_TYPES_HH
#define MCT_COMMON_TYPES_HH

#include <cstdint>

namespace mct
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Physical byte address in the simulated memory. */
using Addr = std::uint64_t;

/** Instruction count. */
using InstCount = std::uint64_t;

/** Cycle count (CPU or memory clock domain; see context). */
using Cycles = std::uint64_t;

/** One nanosecond in ticks. */
constexpr Tick tickNs = 1000;

/** One microsecond in ticks. */
constexpr Tick tickUs = 1000 * tickNs;

/** One millisecond in ticks. */
constexpr Tick tickMs = 1000 * tickUs;

/** One second in ticks. */
constexpr Tick tickSec = 1000 * tickMs;

/** Seconds per tick (reciprocal, so conversions multiply and stat
 *  closures stay division-free). */
constexpr double secPerTick = 1.0 / static_cast<double>(tickSec);

/** Nanoseconds per tick (reciprocal of tickNs, same rationale). */
constexpr double nsPerTick = 1.0 / static_cast<double>(tickNs);

/** CPU clock: 2 GHz (Table 8). */
constexpr Tick cpuCyclePs = 500;

/** Memory clock: 400 MHz (Table 9). */
constexpr Tick memCyclePs = 2500;

/** Cache line size in bytes (Table 8: 64-byte cacheline). */
constexpr unsigned lineBytes = 64;

/** Seconds per simulated "year" when reporting NVM lifetime. */
constexpr double secondsPerYear = 365.25 * 24 * 3600;

} // namespace mct

#endif // MCT_COMMON_TYPES_HH
