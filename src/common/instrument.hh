/**
 * @file
 * Unified instrumentation layer: the stat registry, the structured
 * event trace, and the wall-clock stage profiler.
 *
 * Every simulated component (core, caches, memory controller, NVM
 * device, MCT runtime) registers its counters under a dotted path in
 * a StatRegistry owned by the System. Registration stores cheap
 * closures over the component's existing counters, so the simulated
 * hot paths pay nothing: values are read only when a snapshot is
 * taken, which callers may do at any instruction boundary. Snapshots
 * subtract component-wise, giving delta windows for periodic dumps.
 *
 * The EventTrace is a preallocated ring buffer of small typed records
 * (phase change, sampling round, prediction, config switch, quota
 * throttle, health check, writeback burst) timestamped with the
 * *instruction* clock — never wall time — so traces are exactly
 * reproducible across runs. When the trace is disabled (the default)
 * record() is a single branch and no memory is touched. Traces
 * serialize to JSONL (one event object per line, jq-friendly) and to
 * the Chrome trace-event format loadable in chrome://tracing / Perfetto.
 *
 * SpanTrace applies the same discipline to whole requests: every Nth
 * request id carries a per-stage span record (L1 probe through NVM
 * device) into a fixed-capacity ring, feeding latency-attribution
 * histograms and JSONL / Chrome trace output. Disabled, every hook is
 * a single branch.
 *
 * WallProfiler is the only knowingly non-deterministic piece: it
 * accumulates real elapsed time per named stage for the bench
 * harnesses' self-profiling, and is never fed into simulated state.
 */

#ifndef MCT_COMMON_INSTRUMENT_HH
#define MCT_COMMON_INSTRUMENT_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mct
{

class Serializer;
class Deserializer;

/** What a registered statistic measures. */
enum class StatKind
{
    Counter,  ///< monotonic count; deltas subtract
    Gauge,    ///< instantaneous level; deltas keep the newer value
    Histogram ///< log2-bucketed distribution; deltas subtract buckets
};

/**
 * Power-of-two-bucketed histogram of non-negative observations.
 * Bucket 0 holds values below 1; bucket i >= 1 holds [2^(i-1), 2^i).
 * Recording is allocation-free.
 */
class LogHistogram
{
  public:
    static constexpr std::size_t numBuckets = 64;

    /** Record one observation (negatives clamp to bucket 0). */
    void record(double v);

    /** Observations recorded. */
    std::uint64_t count() const { return n; }

    /** Sum of all observations. */
    double sum() const { return total; }

    /** Mean observation (0 when empty). */
    double mean() const
    {
        return n ? total / static_cast<double>(n) : 0.0;
    }

    /** Raw bucket counts. */
    const std::array<std::uint64_t, numBuckets> &buckets() const
    {
        return buckets_;
    }

    /** Inclusive lower bound of bucket @p i. */
    static double bucketLow(std::size_t i);

    /**
     * Value at quantile @p p in [0, 1], assuming observations are
     * uniformly distributed within each bucket: the target rank
     * p * count() is located in its bucket and linearly interpolated
     * between the bucket's bounds. Exact for distributions that fill
     * buckets uniformly; within one bucket width otherwise. Returns 0
     * when empty.
     */
    double percentile(double p) const;

    /** Forget everything. */
    void reset();

    /** Checkpoint bucket counts and totals. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    std::array<std::uint64_t, numBuckets> buckets_{};
    std::uint64_t n = 0;
    double total = 0.0;
};

/** One stat's value as captured by a snapshot. */
struct StatValue
{
    StatKind kind = StatKind::Gauge;

    /** Counter/gauge value; for histograms, the sum. */
    double num = 0.0;

    /** Histogram observation count (0 otherwise). */
    std::uint64_t count = 0;

    /** Histogram buckets, trimmed of trailing zeros (empty otherwise). */
    std::vector<std::uint64_t> buckets;
};

/** A full registry capture, keyed by dotted path (sorted, so every
 *  serialization of the same snapshot is byte-identical). */
using StatSnapshot = std::map<std::string, StatValue>;

/** Checkpoint a snapshot (map order makes the bytes deterministic). */
void serializeSnapshot(Serializer &s, const StatSnapshot &snap);

/** Restore a snapshot written by serializeSnapshot(). */
StatSnapshot deserializeSnapshot(Deserializer &d);

/**
 * Which stats a snapshot captures. Host-scoped stats (wall-clock and
 * process telemetry, sim.host.* / sim.mips) are nondeterministic by
 * nature, so the default Sim scope excludes them: every existing
 * snapshot consumer — the --stats-json document, periodic deltas,
 * goldens — stays byte-identical across runs even while host
 * profiling is live. Host values are read through an explicit Host
 * (or All) snapshot and land in their own output files.
 */
enum class StatScope
{
    Sim,  ///< deterministic stats only (the default)
    Host, ///< host-scoped stats only
    All   ///< everything
};

/**
 * Registry of named statistics. Components register closures over
 * their existing counters (or request registry-owned cells); queries
 * evaluate the closures on demand. Re-registering a path replaces the
 * previous entry — components that are reconstructed against the same
 * System (e.g. successive MctControllers in a bench) simply take the
 * path over.
 */
class StatRegistry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;

    /** Register a counter read through @p fn. */
    void addCounter(const std::string &path, CounterFn fn,
                    const std::string &desc = "");

    /** Register a gauge read through @p fn. */
    void addGauge(const std::string &path, GaugeFn fn,
                  const std::string &desc = "");

    /**
     * Register a registry-owned counter cell and return a reference
     * the component increments directly. The cell's address is stable
     * for the registry's lifetime.
     */
    std::uint64_t &addCounterCell(const std::string &path,
                                  const std::string &desc = "");

    /** Register a registry-owned histogram and return it (stable). */
    LogHistogram &addHistogram(const std::string &path,
                               const std::string &desc = "");

    /**
     * Flag an already-registered stat as host-scoped (nondeterministic
     * host telemetry): it is excluded from StatScope::Sim snapshots so
     * deterministic outputs stay byte-identical. Panics on an unknown
     * path — marking must follow registration.
     */
    void markHost(const std::string &path);

    /** True when @p path is registered and host-scoped. */
    bool isHost(const std::string &path) const;

    /** True when @p path is registered. */
    bool has(const std::string &path) const;

    /** Number of registered stats. */
    std::size_t size() const { return order.size(); }

    /** Description of a registered stat ("" when absent). */
    std::string description(const std::string &path) const;

    /** All registered paths, sorted. */
    std::vector<std::string> paths() const;

    /** Evaluate one stat now (0 when absent; histograms: the sum). */
    double value(const std::string &path) const;

    /** Capture the registered stats selected by @p scope. */
    StatSnapshot snapshot(StatScope scope = StatScope::Sim) const;

    /**
     * Component-wise difference of two snapshots of the same
     * registry: counters and histograms subtract, gauges keep the
     * @p to value. Paths only in @p to appear unchanged.
     */
    static StatSnapshot delta(const StatSnapshot &from,
                              const StatSnapshot &to);

    /**
     * Checkpoint registry-owned cells and histograms, keyed by path.
     * Closure-backed stats read live component state and are restored
     * by the components themselves.
     */
    void serializeOwned(Serializer &s) const;

    /**
     * Restore registry-owned state written by serializeOwned(). The
     * owning components must have re-registered their paths first; an
     * unknown path is a checkpoint-format bug and panics.
     */
    void deserializeOwned(Deserializer &d);

  private:
    struct Entry
    {
        StatKind kind = StatKind::Gauge;
        CounterFn counter;
        GaugeFn gauge;
        std::unique_ptr<std::uint64_t> cell;
        std::unique_ptr<LogHistogram> hist;
        std::string desc;
        bool host = false; ///< excluded from StatScope::Sim snapshots
    };

    std::map<std::string, Entry> entries;
    std::vector<std::string> order; // registration order (for paths())

    Entry &insert(const std::string &path, const std::string &desc);
};

class JsonWriter;

/**
 * Write a snapshot as one flat JSON object: scalar stats map to
 * numbers, histograms to {"count","sum","mean","buckets":[[lo,n]..]}.
 */
void writeSnapshotJson(std::ostream &os, const StatSnapshot &snap);

/** Same, emitted through an in-progress JsonWriter (for embedding
 *  snapshots inside a larger document). */
void writeSnapshot(JsonWriter &w, const StatSnapshot &snap);

/** Typed events recorded by the runtime layers. */
enum class TraceEventType : std::uint8_t
{
    PhaseChange,        ///< phase detector declared a new phase
    SamplingRoundStart, ///< a cyclic sampling period began
    SamplingRoundEnd,   ///< the sampling period finished
    PredictionMade,     ///< predictor + optimizer chose a config
    ConfigApplied,      ///< a configuration was applied to the system
    QuotaThrottle,      ///< wear quota entered/left a restricted slice
    HealthCheckPass,    ///< health check kept the chosen config
    HealthCheckFallback,///< health check fell back to the baseline
    WritebackBurst,     ///< write-drain burst started/stopped
    FaultInjected,      ///< a fault-plan spec armed or cleared
    RecoveryAction,     ///< the MCT runtime took a degradation step
    SpanComplete,       ///< a sampled request-lifecycle span closed
    DecisionProvenance, ///< a decision's provenance record closed
    AlertRaised,        ///< an alert rule's streak crossed its window count
    AlertCleared,       ///< a raised alert's condition stopped holding
};

/** Number of distinct TraceEventType values. */
constexpr std::size_t numTraceEventTypes = 15;

/** Stable snake_case name of an event type (JSONL "ev" field). */
const char *toString(TraceEventType type);

/** Per-type names of the three numeric event arguments. */
std::array<const char *, 3> traceArgNames(TraceEventType type);

/** One ring-buffer record. POD; no strings, no allocation. */
struct TraceEvent
{
    TraceEventType type = TraceEventType::PhaseChange;

    /** Instruction clock at the record (deterministic timestamp). */
    InstCount inst = 0;

    /** Event arguments; meaning per type (see traceArgNames). */
    std::array<double, 3> args{};
};

/**
 * Fixed-capacity ring buffer of TraceEvents. Disabled (capacity 0)
 * until enable() preallocates storage; record() on a disabled trace
 * is a single predictable branch.
 */
class EventTrace
{
  public:
    EventTrace() = default;

    /** Allocate @p capacity slots and start recording. */
    void enable(std::size_t capacity);

    /** Stop recording and release storage. */
    void disable();

    /** True when recording. */
    bool enabled() const { return cap != 0; }

    /**
     * Point the instruction clock at a live counter (the core's
     * retired-instruction count). Events recorded with no clock get
     * timestamp 0.
     */
    void setClock(const InstCount *instClock) { clock = instClock; }

    /** Record one event (no-op when disabled). */
    void
    record(TraceEventType type, double a0 = 0.0, double a1 = 0.0,
           double a2 = 0.0)
    {
        if (cap == 0)
            return;
        push(type, a0, a1, a2);
    }

    /** Events currently held (<= capacity). */
    std::size_t size() const { return held; }

    /** Events ever recorded. */
    std::uint64_t recorded() const { return total; }

    /** Events overwritten by ring wraparound. */
    std::uint64_t dropped() const { return total - held; }

    /** Buffer capacity (0 when disabled). */
    std::size_t capacity() const { return cap; }

    /** Held events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Count of held events per type. */
    std::array<std::uint64_t, numTraceEventTypes> countsByType() const;

    /** Forget held events (capacity and clock are kept). */
    void clear();

    /** One JSON object per line: {"ev","inst",<named args>}. */
    void writeJsonl(std::ostream &os) const;

    /**
     * Chrome trace-event JSON ({"traceEvents":[...]}). Sampling
     * rounds become B/E duration pairs; everything else instant
     * events. The "ts" field carries the instruction count (the
     * viewer's microseconds axis reads as instructions).
     */
    void writeChromeTrace(std::ostream &os) const;

    /** Checkpoint ring contents and cursors (clock stays attached). */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(); the capacity must match
     *  the current enable() configuration (panics otherwise). */
    void deserialize(Deserializer &d);

  private:
    std::vector<TraceEvent> ring;
    std::size_t cap = 0;
    std::size_t head = 0; ///< next slot to write
    std::size_t held = 0;
    std::uint64_t total = 0;
    const InstCount *clock = nullptr;

    void push(TraceEventType type, double a0, double a1, double a2);
};

/**
 * Pipeline stages a sampled request's latency is attributed to, in
 * the order a demand access traverses them.
 */
enum class SpanStage : std::uint8_t
{
    L1,        ///< L1 probe (instant on miss; absorbs stall on hit)
    L2,        ///< L2 probe
    Llc,       ///< last-level cache probe
    Mshr,      ///< core-side miss wait (submit -> completion)
    CtrlQueue, ///< controller bank-queue wait (arrival -> issue)
    Bank,      ///< bank occupancy (issue -> finish, incl. burst)
    Device,    ///< NVM array access (activate + CAS)
};

/** Number of distinct SpanStage values. */
constexpr std::size_t numSpanStages = 7;

/** Stable snake_case name of a span stage. */
const char *toString(SpanStage stage);

/** Component track a stage belongs to in the Chrome trace output. */
const char *spanStageTrack(SpanStage stage);

/**
 * One completed (or in-flight) request-lifecycle span. POD-ish; all
 * timestamps are simulated Ticks (picoseconds), so serialization is
 * byte-identical across identically-seeded runs.
 */
struct SpanRecord
{
    std::uint64_t id = 0;   ///< request id (core in the top byte)
    Addr addr = 0;
    bool isWrite = false;
    int hitLevel = 0;       ///< 1..3 = cache level hit, 0 = NVM
    InstCount inst = 0;     ///< instruction clock at begin
    Tick begin = 0;
    Tick end = 0;
    std::array<Tick, numSpanStages> enter{};
    std::array<Tick, numSpanStages> exit{};
    std::uint8_t present = 0; ///< bitmask of stages with marks

    bool has(SpanStage s) const
    {
        return (present >> static_cast<unsigned>(s)) & 1u;
    }
};

/**
 * Deterministically sampled request-lifecycle spans. Every Nth
 * request id (by its low 56-bit per-core sequence, so each core
 * samples the same fraction regardless of its id prefix) carries a
 * SpanRecord from the L1 probe to read completion; the cache
 * hierarchy, core, memory controller, and NVM device contribute
 * per-stage enter/exit marks. Completed spans land in a fixed
 * -capacity ring (oldest overwritten, like EventTrace) and feed the
 * optional per-stage latency histograms. Disabled (the default) every
 * hook is a single predictable branch and no memory is touched.
 */
class SpanTrace
{
  public:
    SpanTrace() = default;

    /** Sample every @p sampleEvery-th request; ring of @p capacity. */
    void enable(std::uint64_t sampleEvery, std::size_t capacity);

    /** Stop sampling and release storage. */
    void disable();

    /** True when sampling. */
    bool enabled() const { return every != 0; }

    /** Sampling period (0 when disabled). */
    std::uint64_t sampleEvery() const { return every; }

    /** Point the instruction clock at a live counter (see EventTrace). */
    void setClock(const InstCount *instClock) { clock = instClock; }

    /** Emit a SpanComplete event into @p t whenever a span closes. */
    void attachTrace(EventTrace *t) { events_ = t; }

    /** Feed per-stage durations (ns) into @p h on span close. */
    void setStageHistogram(SpanStage stage, LogHistogram *h)
    {
        stageHist[static_cast<std::size_t>(stage)] = h;
    }

    /** Feed end-to-end durations (ns) into @p h on span close. */
    void setTotalHistogram(LogHistogram *h) { totalHist = h; }

    /** True when @p id falls on the sampling grid. */
    bool sampled(std::uint64_t id) const
    {
        return every != 0 && (id & seqMask) % every == 0;
    }

    /** Open a span for a demand access (no-op unless sampled). */
    void begin(std::uint64_t id, Addr addr, bool isWrite, Tick now);

    /**
     * Record a cache probe on the span opened by the latest begin().
     * A miss is an instant mark; a hit leaves the stage open so the
     * exposed stall is attributed to it when end() closes the span.
     */
    void probe(SpanStage stage, bool hit);

    /** Open @p stage at @p now; end() closes it. */
    void stageEnter(std::uint64_t id, SpanStage stage, Tick now);

    /** Record a closed [@p from, @p to] interval for @p stage. */
    void stageMark(std::uint64_t id, SpanStage stage, Tick from,
                   Tick to);

    /** Close the span: open stages end at @p now; record + emit. */
    void end(std::uint64_t id, Tick now, int hitLevel);

    /** Completed spans currently held (<= capacity). */
    std::size_t size() const { return held; }

    /** Spans ever completed. */
    std::uint64_t recorded() const { return total; }

    /** Completed spans overwritten by ring wraparound. */
    std::uint64_t dropped() const { return total - held; }

    /** Ring capacity (0 when disabled). */
    std::size_t capacity() const { return cap; }

    /** Held spans, oldest first. */
    std::vector<SpanRecord> spans() const;

    /** Forget held spans (capacity, clock and sinks are kept). */
    void clear();

    /** One JSON object per line, integer fields only (see docs). */
    void writeJsonl(std::ostream &os) const;

    /**
     * Chrome trace-event JSON: each stage becomes an "X" complete
     * event on its component's named track ("ts" carries Ticks, so
     * the viewer's microseconds axis reads picoseconds).
     */
    void writeChromeTrace(std::ostream &os) const;

    /** Checkpoint ring, cursors, and in-flight open spans (histogram
     *  and trace sinks stay attached). */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(); sampling period and
     *  capacity must match the current enable() configuration. */
    void deserialize(Deserializer &d);

  private:
    /** Low 56 bits of a request id hold the per-core sequence. */
    static constexpr std::uint64_t seqMask = (1ULL << 56) - 1;

    struct OpenSpan
    {
        SpanRecord rec;
        std::uint8_t openBits = 0; ///< stages begun but not yet closed
    };

    std::vector<SpanRecord> ring;
    std::map<std::uint64_t, OpenSpan> open;
    std::uint64_t every = 0;
    std::size_t cap = 0;
    std::size_t head = 0;
    std::size_t held = 0;
    std::uint64_t total = 0;
    std::uint64_t curId = 0; ///< span the latest begin() opened
    bool curValid = false;
    std::array<LogHistogram *, numSpanStages> stageHist{};
    LogHistogram *totalHist = nullptr;
    EventTrace *events_ = nullptr;
    const InstCount *clock = nullptr;

    void push(const SpanRecord &rec);
};

/** Objectives a ProvenanceRecord audits, in storage order. */
constexpr std::size_t numProvenanceObjectives = 3;

/** Stable name of provenance objective @p i: ipc, lifetime, energy. */
const char *provenanceObjectiveName(std::size_t i);

/** One objective's prediction, later joined with its realization. */
struct ProvenanceObjective
{
    double predicted = 0.0;   ///< predicted value for the chosen config
    double uncertainty = 0.0; ///< model-reported 1-sigma (0 when n/a)
    double realized = 0.0;    ///< measured value one window later
    double relError = 0.0;    ///< |predicted - realized| / |realized|
    bool errorValid = false;  ///< false until closed, or when realized ~ 0
};

/** A rejected candidate configuration at a decision point. */
struct ProvenanceCandidate
{
    std::uint32_t config = 0; ///< index into the configuration space
    double ipc = 0.0;         ///< predicted IPC
    double lifetimeYears = 0.0;
    double energyJ = 0.0;
    bool feasible = false;    ///< met the lifetime floor
};

/**
 * Why one optimization decision was made and how it turned out: the
 * model's identity, its per-objective predictions with uncertainty,
 * the constraint set and the rejected runner-ups at decision time;
 * then, one monitored window later, the realized objectives, the
 * per-objective relative error and the regret versus the best sampled
 * configuration. All inputs are simulation-deterministic, so records
 * serialize byte-identically across identically-seeded runs.
 */
struct ProvenanceRecord
{
    std::uint64_t seq = 0;    ///< decision index (0-based)
    std::uint64_t phase = 0;  ///< phase id that triggered the decision
    InstCount inst = 0;       ///< instruction clock at the decision
    InstCount closeInst = 0;  ///< instruction clock at close (0 = open)
    std::string model;        ///< predictor identity (Table 7 label)
    std::string configKey;    ///< chosen configuration, human-readable
    std::int32_t chosen = -1; ///< chosen index into the space
    bool fallback = false;    ///< decision fell back to the baseline
    std::uint32_t sampledConfigs = 0; ///< configs measured this round

    /** Constraint set the optimizer enforced. */
    double minLifetimeYears = 0.0;
    double ipcFraction = 0.0;
    double safetyMargin = 0.0;

    /** ipc, lifetime, energy (see provenanceObjectiveName). */
    std::array<ProvenanceObjective, numProvenanceObjectives>
        objectives{};

    /** Highest-ranked rejected candidates, best first. */
    std::vector<ProvenanceCandidate> runnerUps;

    /** Best *measured* IPC among the sampled configurations. */
    double bestSampledIpc = 0.0;

    /** bestSampledIpc - realized IPC (negative: beat the samples). */
    double regret = 0.0;

    /** Running sum of max(regret, 0) up to and including this record. */
    double cumRegret = 0.0;

    /**
     * Per-objective feature attribution in configuration-vector space
     * (lasso |coefficients|, GBM split-gain importances), populated
     * only on audit-sampled decisions; empty vectors otherwise.
     */
    std::array<std::vector<double>, numProvenanceObjectives>
        attribution{};

    bool closed = false; ///< realized objectives have been attached

    /** Checkpoint every field (strings and vectors included). */
    void serialize(Serializer &s) const;

    /** Restore a record written by serialize(). */
    void deserialize(Deserializer &d);
};

/**
 * Attach realized objectives to @p rec: fills the realized values,
 * the per-objective relative error |pred - real| / |real| (marked
 * invalid when the realized value is non-finite or ~0 — nothing
 * meaningful divides by it), the IPC regret versus bestSampledIpc
 * (0 when the record has no sample oracle), and marks the record
 * closed at @p closeInst. Returns how many objectives' errors were
 * invalidated by the zero-realized guard.
 */
std::size_t closeProvenanceRecord(ProvenanceRecord &rec,
                                  double realizedIpc,
                                  double realizedLifetimeYears,
                                  double realizedEnergyJ,
                                  InstCount closeInst);

/**
 * Fixed-capacity ring of closed ProvenanceRecords, mirroring
 * SpanTrace's lifecycle: disabled (the default) record() is a single
 * branch; enabled, closed records land in the ring (oldest
 * overwritten) and optionally echo a DecisionProvenance event into an
 * attached EventTrace. Serializes to JSONL (one record per line) and
 * to the Chrome trace-event format, where each decision becomes a
 * complete event spanning decision to close on a "provenance" track.
 */
class ProvenanceTrace
{
  public:
    ProvenanceTrace() = default;

    /** Allocate a ring of @p capacity records and start recording. */
    void enable(std::size_t capacity);

    /** Stop recording and release storage. */
    void disable();

    /** True when recording. */
    bool enabled() const { return cap != 0; }

    /** Emit a DecisionProvenance event into @p t per closed record. */
    void attachTrace(EventTrace *t) { events_ = t; }

    /** Append a closed record (no-op when disabled). */
    void record(const ProvenanceRecord &rec);

    /** Records currently held (<= capacity). */
    std::size_t size() const { return held; }

    /** Records ever recorded. */
    std::uint64_t recorded() const { return total; }

    /** Records overwritten by ring wraparound. */
    std::uint64_t dropped() const { return total - held; }

    /** Ring capacity (0 when disabled). */
    std::size_t capacity() const { return cap; }

    /** Held records, oldest first. */
    std::vector<ProvenanceRecord> records() const;

    /** Forget held records (capacity and sinks are kept). */
    void clear();

    /** One JSON object per line (see docs/observability.md). */
    void writeJsonl(std::ostream &os) const;

    /**
     * Chrome trace-event JSON: each decision is an "X" complete event
     * from its decision instruction to its close instruction on the
     * "provenance" track ("ts" carries instructions).
     */
    void writeChromeTrace(std::ostream &os) const;

    /** Checkpoint ring contents and cursors. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(); the capacity must match
     *  the current enable() configuration (panics otherwise). */
    void deserialize(Deserializer &d);

  private:
    std::vector<ProvenanceRecord> ring;
    std::size_t cap = 0;
    std::size_t head = 0;
    std::size_t held = 0;
    std::uint64_t total = 0;
    EventTrace *events_ = nullptr;
};

/**
 * Glob match for dotted stat paths: '*' matches any run of
 * characters (dots included), everything else is literal. The same
 * semantics as the thresholds.txt / alerts.txt rule globs, exposed
 * here so simulated code (MetricTimeline, AlertEngine) and the report
 * tool agree on what a pattern selects.
 */
bool statGlobMatch(const std::string &pattern, const std::string &path);

/**
 * Windowed time series of glob-selected deterministic metrics. On
 * every --stats-every boundary the driver hands over the window's
 * delta snapshot (StatScope::Sim only, so the series is byte-identical
 * across identically-seeded runs); the timeline keeps the per-metric
 * window values in a fixed-capacity ring (oldest window overwritten,
 * with dropped-window accounting like EventTrace) plus streaming
 * EWMA/min/max rollups over *all* observed windows, survivors and
 * dropped alike.
 *
 * The tracked-metric list is bound lazily from the first observed
 * snapshot's keys: stats that register after construction (the MCT
 * controller's mct.* family appears post-warmup) are still selectable
 * as long as they exist by the first window. Metrics absent from a
 * later snapshot read as 0.
 *
 * Disabled (the default) observe() is a single branch. The ring,
 * binding, and rollups serialize through the checkpoint subsystem so
 * a killed-then-resumed run reproduces the identical timeline; the
 * enable() configuration (globs, capacity) is construction-time state
 * pinned by the run fingerprint and must match at restore.
 */
class MetricTimeline
{
  public:
    MetricTimeline() = default;

    /** EWMA smoothing factor (fixed; part of the on-disk format). */
    static constexpr double ewmaAlpha = 0.25;

    /** Track metrics matching any of @p globs; ring of @p capacity
     *  windows. An empty glob list tracks everything. */
    void enable(std::vector<std::string> globs, std::size_t capacity);

    /** Stop collecting and release storage. */
    void disable();

    /** True when collecting. */
    bool enabled() const { return cap != 0; }

    /** True once the metric list has been bound (first observe()). */
    bool bound() const { return bound_; }

    /** The enable()-time metric globs. */
    const std::vector<std::string> &globs() const { return globs_; }

    /** Bound metric paths, sorted (empty before the first window). */
    const std::vector<std::string> &metrics() const { return names; }

    /** Record one window (no-op when disabled). */
    void observe(InstCount inst, const StatSnapshot &delta);

    /** Windows currently held (<= capacity). */
    std::size_t size() const { return held; }

    /** Windows ever observed. */
    std::uint64_t recorded() const { return total; }

    /** Windows overwritten by ring wraparound. */
    std::uint64_t dropped() const { return total - held; }

    /** Ring capacity in windows (0 when disabled). */
    std::size_t capacity() const { return cap; }

    /** Instruction clock of each held window, oldest first. */
    std::vector<InstCount> insts() const;

    /** Held window values of bound metric @p metricIdx, oldest first. */
    std::vector<double> series(std::size_t metricIdx) const;

    /** Streaming rollup over every observed window of one metric. */
    struct Rollup
    {
        double ewma = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    /** Rollup of bound metric @p metricIdx (zeros before window 1). */
    const Rollup &rollup(std::size_t metricIdx) const
    {
        return rollups[metricIdx];
    }

    /** Forget windows, binding, and rollups (config is kept). */
    void clear();

    /**
     * The timeline body of the mct-timeline-v1 document: bound
     * metrics, window instruction marks, per-metric series and
     * rollups, and a flat "final" object (sim.timeline.* scalars plus
     * per-metric ewma/min/max) that mct_report diff can gate.
     * @p extraFinal appends additional scalars (the driver passes the
     * alert counters) into the same "final" object.
     */
    void writeJson(std::ostream &os, const std::string &mode,
                   const std::string &app, const std::string &config,
                   const std::map<std::string, double> &extraFinal)
        const;

    /** Checkpoint binding, ring, cursors, and rollups. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(); the capacity must match
     *  the current enable() configuration (panics otherwise). */
    void deserialize(Deserializer &d);

  private:
    struct Window
    {
        InstCount inst = 0;
        std::vector<double> vals; ///< one per bound metric
    };

    std::vector<std::string> globs_;
    std::vector<std::string> names; ///< bound metric paths, sorted
    std::vector<Window> ring;
    std::vector<Rollup> rollups;
    std::size_t cap = 0;
    std::size_t head = 0; ///< next slot to write
    std::size_t held = 0;
    std::uint64_t total = 0;
    bool bound_ = false;

    bool selected(const std::string &path) const;
};

/**
 * Wall-clock profiler for the bench harness: accumulates real elapsed
 * seconds per named stage (trace replay, sampling, fit, optimize...).
 * Stages may nest and repeat; begin/end pairs per name must balance.
 */
class WallProfiler
{
  public:
    /** Start (or resume) a stage. */
    void begin(const std::string &stage);

    /** Stop a stage and accumulate its elapsed time. */
    void end(const std::string &stage);

    /** RAII stage guard. */
    class Scope
    {
      public:
        Scope(WallProfiler *profiler, const char *stage)
            : p(profiler), name(stage)
        {
            if (p)
                p->begin(name);
        }
        ~Scope()
        {
            if (p)
                p->end(name);
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        WallProfiler *p;
        const char *name;
    };

    struct Stage
    {
        std::string name;
        double seconds = 0.0;
        std::uint64_t calls = 0;
    };

    /** All stages, in first-use order. */
    std::vector<Stage> stages() const;

    /** Accumulated seconds of one stage (0 when absent). */
    double seconds(const std::string &stage) const;

    /** {"stages":[{"name","seconds","calls"}...]} */
    void writeJson(std::ostream &os) const;

  private:
    struct Cell
    {
        double seconds = 0.0;
        std::uint64_t calls = 0;
        std::chrono::steady_clock::time_point start{};
        bool open = false;
    };

    std::map<std::string, Cell> cells;
    std::vector<std::string> order;
};

/** Process memory telemetry parsed from /proc/self/status. */
struct HostMemory
{
    double rssKb = 0.0;  ///< VmRSS: current resident set
    double hwmKb = 0.0;  ///< VmHWM: peak resident set
    double heapKb = 0.0; ///< VmData: data segment (heap + globals)
    bool valid = false;  ///< at least one field parsed
};

/** Parse a /proc/self/status-style text. Exposed for tests. */
HostMemory parseHostStatus(const std::string &text);

/**
 * Time and memory source behind HostProfiler. The base class reads
 * the real process clocks (steady wall clock, CLOCK_PROCESS_CPUTIME)
 * and /proc/self/status; tests substitute a subclass with scripted
 * values so host-metric arithmetic is checked deterministically.
 */
class HostClock
{
  public:
    virtual ~HostClock() = default;

    /** Monotonic wall-clock nanoseconds (arbitrary epoch). */
    virtual std::uint64_t wallNs() const;

    /** Process CPU-time nanoseconds (all threads). */
    virtual std::uint64_t cpuNs() const;

    /** /proc/self/status text ("" where unavailable). */
    virtual std::string procStatus() const;
};

/**
 * Host-side performance telemetry for the simulator's core loop: how
 * fast the simulation runs on the machine underneath it, and where
 * the host time goes. Accumulates wall *and* CPU seconds per named
 * stage (replay, step, sampling, fit, optimize), tracks process
 * memory (RSS high-water), counts simulated instructions, and derives
 * the sim.mips throughput gauge (million simulated instructions per
 * host wall-second).
 *
 * Everything here is wall-clock derived and therefore
 * nondeterministic; values are published only through host-scoped
 * registry stats (StatScope::Host) and the dedicated
 * --host-profile-out / --host-profile-chrome files, never through the
 * byte-identical surfaces. Disabled (the default) the begin/end hot
 * path is a single branch, mirroring the other traces.
 */
class HostProfiler
{
  public:
    HostProfiler() = default;

    /**
     * Arm the profiler. @p clock defaults to the real host clock;
     * @p timelineCap bounds the Chrome-trace slice ring.
     */
    void enable(const HostClock *clock = nullptr,
                std::size_t timelineCap = 8192);

    bool enabled() const { return clock_ != nullptr; }

    /** Start a stage (no-op while disabled). */
    void begin(const char *stage);

    /** Stop a stage and accumulate wall + CPU time. */
    void end(const char *stage);

    /** RAII stage guard; null profiler and disabled are both safe. */
    class Scope
    {
      public:
        Scope(HostProfiler *profiler, const char *stage)
            : p(profiler && profiler->enabled() ? profiler : nullptr),
              name(stage)
        {
            if (p)
                p->begin(name);
        }
        ~Scope()
        {
            if (p)
                p->end(name);
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        HostProfiler *p;
        const char *name;
    };

    struct Stage
    {
        std::string name;
        double wallSeconds = 0.0;
        double cpuSeconds = 0.0;
        std::uint64_t calls = 0;
    };

    /** All stages, in first-use order. */
    std::vector<Stage> stages() const;

    /** Accumulated wall seconds of one stage (0 when absent). */
    double wallSeconds(const std::string &stage) const;

    /** Accumulated CPU seconds of one stage (0 when absent). */
    double cpuSeconds(const std::string &stage) const;

    /** Credit @p n simulated instructions to the run. */
    void addInstructions(std::uint64_t n) { insts_ += n; }

    std::uint64_t instructions() const { return insts_; }

    /** Wall / CPU seconds since enable(). */
    double elapsedWallSeconds() const;
    double elapsedCpuSeconds() const;

    /** Million simulated instructions per host wall-second. */
    double mips() const;

    /** Refresh memory telemetry; RSS high-water is kept. */
    void sampleMemory();

    const HostMemory &memory() const { return mem_; }

    /** Largest resident set seen by any sampleMemory() call (kB). */
    double rssHighWaterKb() const { return rssHwmKb_; }

    /** One host sample on the --stats-every cadence. */
    struct PeriodicSample
    {
        std::uint64_t inst = 0;
        double wallSeconds = 0.0;
        double cpuSeconds = 0.0;
        double mips = 0.0;
        double rssKb = 0.0;
    };

    /** Record a periodic sample (also refreshes memory telemetry). */
    void samplePeriodic(std::uint64_t inst);

    const std::vector<PeriodicSample> &periodic() const
    {
        return periodic_;
    }

    /** Timeline slices dropped once the ring filled. */
    std::uint64_t timelineDropped() const { return timelineDropped_; }

    /**
     * Register the sim.mips / sim.host.* gauges, host-scoped so they
     * never leak into deterministic (StatScope::Sim) snapshots.
     */
    void registerStats(StatRegistry &reg);

    /** The mct-host-v1 document (--host-profile-out). */
    void writeJson(std::ostream &os, const std::string &mode,
                   const std::string &app,
                   const std::string &config) const;

    /** Host timeline as Chrome trace events (--host-profile-chrome). */
    void writeChromeTrace(std::ostream &os) const;

  private:
    struct Cell
    {
        double wallNs = 0.0;
        double cpuNs = 0.0;
        std::uint64_t calls = 0;
        std::uint64_t openWallNs = 0;
        std::uint64_t openCpuNs = 0;
        std::uint32_t index = 0; ///< position in order_
        bool open = false;
    };

    /** One completed begin/end pair for the Chrome timeline. */
    struct TimelineSlice
    {
        std::uint32_t stage = 0; ///< index into order_
        std::uint64_t startNs = 0;
        std::uint64_t durNs = 0;
        std::uint64_t cpuNs = 0;
    };

    const HostClock *clock_ = nullptr;
    std::uint64_t epochWallNs_ = 0;
    std::uint64_t epochCpuNs_ = 0;
    std::map<std::string, Cell> cells_;
    std::vector<std::string> order_;
    std::uint64_t insts_ = 0;
    HostMemory mem_;
    double rssHwmKb_ = 0.0;
    std::vector<TimelineSlice> timeline_;
    std::size_t timelineCap_ = 0;
    std::uint64_t timelineDropped_ = 0;
    std::vector<PeriodicSample> periodic_;
};

} // namespace mct

#endif // MCT_COMMON_INSTRUMENT_HH
