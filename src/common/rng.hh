/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the simulator (workload generators,
 * random samplers) draw from an explicitly-seeded Rng so that every
 * experiment is reproducible bit-for-bit. The engine is xoshiro256**,
 * which is fast and has no observable bias for our purposes.
 */

#ifndef MCT_COMMON_RNG_HH
#define MCT_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

/**
 * Seedable xoshiro256** generator with convenience distributions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            // splitmix64 seeding as recommended by the xoshiro authors.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        if (n == 0)
            mct_panic("Rng::below(0)");
        // Rejection-free modulo is fine at our scales.
        return next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        if (hi < lo)
            mct_panic("Rng::range: hi < lo");
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability p of true. */
    bool
    flip(double p)
    {
        return uniform() < p;
    }

    /** Standard normal via Box-Muller (one value per call). */
    double
    gaussian()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586 * u2;
        spare = r * std::sin(theta);
        haveSpare = true;
        return r * std::cos(theta);
    }

    /** Exponential with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        while (u <= 1e-300)
            u = uniform();
        return -mean * std::log(u);
    }

    /** Checkpoint the full stream position (xoshiro state plus the
     *  buffered Box-Muller spare). */
    void
    serialize(Serializer &s) const
    {
        for (const std::uint64_t word : state)
            s.putU64(word);
        s.putBool(haveSpare);
        s.putF64(spare);
    }

    /** Restore a stream checkpointed with serialize(). */
    void
    deserialize(Deserializer &d)
    {
        for (std::uint64_t &word : state)
            word = d.getU64();
        haveSpare = d.getBool();
        spare = d.getF64();
    }

  private:
    std::uint64_t state[4];
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace mct

#endif // MCT_COMMON_RNG_HH
