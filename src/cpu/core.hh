/**
 * @file
 * Trace-driven core timing model.
 *
 * The paper's substrate simulated an 8-issue out-of-order Alpha core
 * in gem5 (Table 8). MCT only observes the memory-system consequences
 * of the core, so this model reproduces exactly those couplings:
 *
 *  - non-memory instructions retire at the issue width;
 *  - cache hits expose a small, level-dependent fraction of their
 *    latency (out-of-order overlap);
 *  - NVM reads proceed in parallel up to a per-workload memory-level-
 *    parallelism bound (and the LLC MSHR count), with an optional
 *    dependent-load probability that forces serialization (pointer
 *    chasing a la gups);
 *  - LLC writebacks stall the core only through write-queue
 *    backpressure.
 *
 * Cache state is updated instantly on access (classic trace-driven
 * approximation); timing is accounted separately via the outstanding-
 * miss window.
 */

#ifndef MCT_CPU_CORE_HH
#define MCT_CPU_CORE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "memctrl/controller.hh"
#include "workloads/workload.hh"

namespace mct
{

/** Core timing parameters (Table 8 defaults). */
struct CoreParams
{
    unsigned issueWidth = 8;

    /** Exposed stall cycles for an L2 hit (12-cycle latency, mostly
     *  hidden by out-of-order overlap). */
    double l2StallCycles = 4.0;

    /** Exposed stall cycles for an L3 hit (35-cycle latency). */
    double l3StallCycles = 14.0;

    /** LLC MSHRs: hard cap on outstanding NVM reads (Table 8: 32). */
    unsigned maxMshrs = 32;

    /** Collect eager-writeback candidates every this many mem ops. */
    unsigned eagerCheckPeriod = 32;
};

/** Cumulative core statistics; snapshot-and-diff for windows. */
struct CoreStats
{
    InstCount instructions = 0;
    std::uint64_t memOps = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l3Hits = 0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;     // writebacks submitted
    std::uint64_t eagerSubmitted = 0;
    Tick memStallTicks = 0;
    Tick wbStallTicks = 0;

    CoreStats delta(const CoreStats &earlier) const;

    /** Checkpoint every counter. */
    void serialize(Serializer &s) const;

    /** Restore counters written by serialize(). */
    void deserialize(Deserializer &d);
};

class Core;

/**
 * Routes demand-read completions from the shared memory controller
 * back to the issuing cores. Request ids carry the core index in
 * their top byte.
 */
class CompletionRouter
{
  public:
    explicit CompletionRouter(MemController &controller)
        : ctrl(controller)
    {}

    /** Register a core; its index must equal its position. */
    void addCore(Core *core) { cores.push_back(core); }

    /** Dispatch all pending completions to their cores. */
    void drain();

  private:
    MemController &ctrl;
    std::vector<Core *> cores;
};

/**
 * One simulated core: a workload, a cache hierarchy, and a connection
 * to the shared memory controller.
 */
class Core
{
  public:
    Core(unsigned id, const CoreParams &params, Workload &workload,
         CacheHierarchy &hierarchy, MemController &controller,
         CompletionRouter &router);

    /** Run until at least @p insts more instructions retire. */
    void run(InstCount insts);

    /** Current core time. */
    Tick now() const { return cpuTick; }

    /** Total instructions retired. */
    InstCount retired() const { return st.instructions; }

    /** Cumulative statistics. */
    const CoreStats &stats() const { return st; }

    /** Core index. */
    unsigned id() const { return coreId; }

    /** IPC over the whole run so far. */
    double ipc() const;

    /** Register this core's counters under @p prefix (e.g. "cpu"). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Completion callback used by the CompletionRouter. */
    void onReadComplete(std::uint64_t id, Tick tick);

    /** Open/close request-lifecycle spans on this core's accesses. */
    void attachSpans(SpanTrace *t) { spans = t; }

    /**
     * Let this core's clock catch up to @p tick without retiring
     * instructions (used by the multi-core scheduler).
     */
    void syncTo(Tick tick) { cpuTick = std::max(cpuTick, tick); }

    /** Checkpoint clocks, MSHR set, partial-op state, and stats. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    unsigned coreId;
    CoreParams p;
    Workload &wl;
    CacheHierarchy &hier;
    MemController &ctrl;
    CompletionRouter &router;
    Rng rng;

    SpanTrace *spans = nullptr;
    Tick cpuTick = 0;
    std::uint64_t nextReadSeq = 0;
    std::unordered_set<std::uint64_t> outstanding;
    Tick lastCompletionTick = 0;
    std::uint64_t memOpsSinceEagerCheck = 0;

    // One op may be partially executed when a run() quantum ends.
    WorkloadOp pendingOp{};
    bool havePending = false;
    std::uint32_t gapLeft = 0;

    CoreStats st;
    std::vector<Addr> eagerScratch;

    std::uint64_t makeReadId();

    /** Execute up to @p maxInsts gap instructions; returns how many. */
    InstCount executeGap(InstCount maxInsts);

    /** Issue the memory part of the pending op. */
    void executeMemOp();

    /** Submit a writeback, stalling on queue backpressure. */
    void submitWriteback(Addr addr);

    /** Block until fewer than @p limit reads are outstanding. */
    void waitOutstandingBelow(std::size_t limit);

    /** Block until a specific read id completes. */
    void waitForRead(std::uint64_t id);

    /** Advance the controller one event and route completions. */
    void pumpController();

    /** Opportunistically push eager-writeback candidates. */
    void maybeCollectEager();
};

} // namespace mct

#endif // MCT_CPU_CORE_HH
