#include "cpu/core.hh"

#include <algorithm>
#include <cmath>

#include "common/instrument.hh"
#include "common/logging.hh"

namespace mct
{

namespace
{
/** Read ids carry the issuing core in their top byte. */
constexpr unsigned coreIdShift = 56;
} // namespace

CoreStats
CoreStats::delta(const CoreStats &earlier) const
{
    CoreStats d;
    d.instructions = instructions - earlier.instructions;
    d.memOps = memOps - earlier.memOps;
    d.l1Hits = l1Hits - earlier.l1Hits;
    d.l2Hits = l2Hits - earlier.l2Hits;
    d.l3Hits = l3Hits - earlier.l3Hits;
    d.memReads = memReads - earlier.memReads;
    d.memWrites = memWrites - earlier.memWrites;
    d.eagerSubmitted = eagerSubmitted - earlier.eagerSubmitted;
    d.memStallTicks = memStallTicks - earlier.memStallTicks;
    d.wbStallTicks = wbStallTicks - earlier.wbStallTicks;
    return d;
}

void
CompletionRouter::drain()
{
    auto &done = ctrl.completedReads();
    for (const auto &[id, tick] : done) {
        const unsigned core = static_cast<unsigned>(id >> coreIdShift);
        if (core >= cores.size())
            mct_panic("completion for unknown core ", core);
        cores[core]->onReadComplete(id, tick);
    }
    done.clear();
}

Core::Core(unsigned id, const CoreParams &params, Workload &workload,
           CacheHierarchy &hierarchy, MemController &controller,
           CompletionRouter &completionRouter)
    : coreId(id), p(params), wl(workload), hier(hierarchy),
      ctrl(controller), router(completionRouter),
      rng(0xC0DEull + id)
{
    if (p.issueWidth == 0)
        mct_fatal("Core: issueWidth must be positive");
    router.addCore(this);
}

std::uint64_t
Core::makeReadId()
{
    return (static_cast<std::uint64_t>(coreId) << coreIdShift) |
           (nextReadSeq++ & ((1ULL << coreIdShift) - 1));
}

double
Core::ipc() const
{
    if (cpuTick == 0)
        return 0.0;
    const double cycles = static_cast<double>(cpuTick) /
                          static_cast<double>(cpuCyclePs);
    return static_cast<double>(st.instructions) / cycles;
}

void
Core::onReadComplete(std::uint64_t id, Tick tick)
{
    outstanding.erase(id);
    lastCompletionTick = std::max(lastCompletionTick, tick);
    if (spans)
        spans->end(id, tick, 0);
}

InstCount
Core::executeGap(InstCount maxInsts)
{
    const InstCount todo =
        std::min<InstCount>(gapLeft, maxInsts);
    if (todo > 0) {
        const double cycles = static_cast<double>(todo) /
                              static_cast<double>(p.issueWidth);
        cpuTick += static_cast<Tick>(cycles *
                                     static_cast<double>(cpuCyclePs));
        st.instructions += todo;
        gapLeft -= static_cast<std::uint32_t>(todo);
    }
    return todo;
}

void
Core::run(InstCount insts)
{
    const InstCount target = st.instructions + insts;
    while (st.instructions < target) {
        if (!havePending) {
            wl.next(pendingOp);
            gapLeft = pendingOp.gap;
            havePending = true;
        }
        // Retire the plain-instruction gap (possibly split across
        // run() quanta so sampling windows stay exact).
        executeGap(target - st.instructions);
        if (gapLeft > 0)
            return; // quantum exhausted mid-gap
        if (st.instructions >= target)
            return; // the memory op belongs to the next quantum
        executeMemOp();
        havePending = false;
        st.instructions += 1; // the memory instruction itself
    }
}

void
Core::executeMemOp()
{
    ++st.memOps;
    // Every access gets an id so span sampling is keyed on a stable
    // grid whether or not it misses (only misses submit the id).
    const std::uint64_t id = makeReadId();
    if (spans)
        spans->begin(id, pendingOp.addr, pendingOp.isWrite, cpuTick);
    AccessOutcome outcome;
    hier.access(pendingOp.addr, pendingOp.isWrite, outcome);

    for (Addr wb : outcome.writebacks)
        submitWriteback(wb);

    switch (outcome.hitLevel) {
      case 1:
        ++st.l1Hits;
        // Fully pipelined (Table 8: 2-cycle hit, hidden at 8-issue).
        break;
      case 2:
        ++st.l2Hits;
        cpuTick += static_cast<Tick>(p.l2StallCycles *
                                     static_cast<double>(cpuCyclePs));
        break;
      case 3:
        ++st.l3Hits;
        cpuTick += static_cast<Tick>(p.l3StallCycles *
                                     static_cast<double>(cpuCyclePs));
        break;
      default: {
        // NVM demand read (store misses fetch their line too:
        // write-allocate). Retry on a full read queue.
        while (!ctrl.submitRead(pendingOp.addr, cpuTick, id, coreId)) {
            const Tick before = cpuTick;
            pumpController();
            cpuTick = std::max(cpuTick, ctrl.now());
            st.memStallTicks += cpuTick - before;
        }
        ++st.memReads;
        outstanding.insert(id);
        if (spans)
            spans->stageEnter(id, SpanStage::Mshr, cpuTick);
        router.drain();

        const unsigned limit =
            std::min<unsigned>(wl.traits().mlp, p.maxMshrs);
        if (pendingOp.dependent && !pendingOp.isWrite) {
            waitForRead(id);
        } else if (outstanding.size() >= limit) {
            waitOutstandingBelow(limit);
        }
        break;
      }
    }

    // Hits close their span here (the hit stage absorbs the exposed
    // stall); misses close when the completion is routed back.
    if (spans && outcome.hitLevel != 0)
        spans->end(id, cpuTick, outcome.hitLevel);

    if (++memOpsSinceEagerCheck >= p.eagerCheckPeriod) {
        memOpsSinceEagerCheck = 0;
        maybeCollectEager();
    }
}

void
Core::submitWriteback(Addr addr)
{
    const Tick before = cpuTick;
    while (!ctrl.submitWrite(addr, cpuTick, coreId)) {
        // Write-queue backpressure stalls the LLC and hence the core.
        pumpController();
        cpuTick = std::max(cpuTick, ctrl.now());
    }
    st.wbStallTicks += cpuTick - before;
    ++st.memWrites;
}

void
Core::waitOutstandingBelow(std::size_t limit)
{
    const Tick before = cpuTick;
    while (outstanding.size() >= limit) {
        pumpController();
    }
    cpuTick = std::max(cpuTick, lastCompletionTick);
    st.memStallTicks += cpuTick - before;
}

void
Core::waitForRead(std::uint64_t id)
{
    const Tick before = cpuTick;
    while (outstanding.count(id)) {
        pumpController();
    }
    cpuTick = std::max(cpuTick, lastCompletionTick);
    st.memStallTicks += cpuTick - before;
}

void
Core::pumpController()
{
    const Tick next = ctrl.nextEventTick();
    if (next == MemController::noEvent)
        mct_panic("core ", coreId, " waiting on an idle controller");
    ctrl.advance(next == ctrl.now() ? next + 1 : next);
    router.drain();
}

void
Core::maybeCollectEager()
{
    const MellowConfig &cfg = ctrl.config();
    if (!cfg.eagerWritebacks)
        return;
    const unsigned space = std::min(8u, ctrl.eagerFree());
    if (space == 0)
        return;
    eagerScratch.clear();
    hier.llc().collectEagerCandidates(cfg.eagerThreshold, space,
                                      eagerScratch);
    for (Addr addr : eagerScratch) {
        if (!ctrl.submitEager(addr, cpuTick, coreId))
            break;
        ++st.eagerSubmitted;
    }
}

void
Core::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    const CoreStats *s = &st;
    reg.addCounter(prefix + ".instructions",
                   [s] { return s->instructions; });
    reg.addGauge(prefix + ".ipc", [this] { return ipc(); });
    reg.addCounter(prefix + ".mem_ops", [s] { return s->memOps; });
    reg.addCounter(prefix + ".l1_hits", [s] { return s->l1Hits; });
    reg.addCounter(prefix + ".l2_hits", [s] { return s->l2Hits; });
    reg.addCounter(prefix + ".l3_hits", [s] { return s->l3Hits; });
    reg.addCounter(prefix + ".nvm_reads", [s] { return s->memReads; });
    reg.addCounter(prefix + ".nvm_writebacks",
                   [s] { return s->memWrites; });
    reg.addCounter(prefix + ".eager_submitted",
                   [s] { return s->eagerSubmitted; });
    reg.addCounter(prefix + ".mem_stall_ticks",
                   [s] { return s->memStallTicks; });
    reg.addCounter(prefix + ".wb_stall_ticks",
                   [s] { return s->wbStallTicks; });
}

void
Core::serialize(Serializer &s) const
{
    rng.serialize(s);
    s.putU64(cpuTick);
    s.putU64(nextReadSeq);
    // The MSHR set is unordered; serialize sorted so identical state
    // always produces identical bytes.
    std::vector<std::uint64_t> ids(outstanding.begin(),
                                   outstanding.end());
    std::sort(ids.begin(), ids.end());
    s.putU64(ids.size());
    for (const std::uint64_t id : ids)
        s.putU64(id);
    s.putU64(lastCompletionTick);
    s.putU64(memOpsSinceEagerCheck);
    s.putU32(pendingOp.gap);
    s.putBool(pendingOp.isWrite);
    s.putU64(pendingOp.addr);
    s.putBool(pendingOp.dependent);
    s.putBool(havePending);
    s.putU32(gapLeft);
    st.serialize(s);
}

void
CoreStats::serialize(Serializer &s) const
{
    s.putU64(instructions);
    s.putU64(memOps);
    s.putU64(l1Hits);
    s.putU64(l2Hits);
    s.putU64(l3Hits);
    s.putU64(memReads);
    s.putU64(memWrites);
    s.putU64(eagerSubmitted);
    s.putU64(memStallTicks);
    s.putU64(wbStallTicks);
}

void
CoreStats::deserialize(Deserializer &d)
{
    instructions = d.getU64();
    memOps = d.getU64();
    l1Hits = d.getU64();
    l2Hits = d.getU64();
    l3Hits = d.getU64();
    memReads = d.getU64();
    memWrites = d.getU64();
    eagerSubmitted = d.getU64();
    memStallTicks = d.getU64();
    wbStallTicks = d.getU64();
}

void
Core::deserialize(Deserializer &d)
{
    rng.deserialize(d);
    cpuTick = d.getU64();
    nextReadSeq = d.getU64();
    outstanding.clear();
    const std::uint64_t nOutstanding = d.getU64();
    for (std::uint64_t i = 0; i < nOutstanding && d.ok(); ++i)
        outstanding.insert(d.getU64());
    lastCompletionTick = d.getU64();
    memOpsSinceEagerCheck = d.getU64();
    pendingOp.gap = d.getU32();
    pendingOp.isWrite = d.getBool();
    pendingOp.addr = d.getU64();
    pendingOp.dependent = d.getBool();
    havePending = d.getBool();
    gapLeft = d.getU32();
    st.deserialize(d);
}

} // namespace mct
