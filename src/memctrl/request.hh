/**
 * @file
 * Memory requests exchanged between the cache hierarchy / CPU and the
 * NVM memory controller.
 */

#ifndef MCT_MEMCTRL_REQUEST_HH
#define MCT_MEMCTRL_REQUEST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace mct
{

/** Where a request originated; determines queue and priority. */
enum class ReqSource
{
    Demand,    ///< Demand read miss (read queue, highest priority).
    Writeback, ///< LLC eviction writeback (write queue).
    Eager,     ///< Eager mellow writeback (eager queue, lowest).
    Scrub,     ///< Retention / disturbance refresh write (forced).
};

/** Human-readable name of a request source. */
std::string toString(ReqSource source);

/**
 * One memory request as tracked by the controller.
 */
struct Request
{
    /** Line-aligned physical address. */
    Addr addr = 0;

    /** True for writes (Writeback and Eager sources). */
    bool isWrite = false;

    /** Originating agent. */
    ReqSource source = ReqSource::Demand;

    /** Tick the request entered the controller. */
    Tick arrival = 0;

    /** Caller-chosen identifier for read completions. */
    std::uint64_t id = 0;

    /** Issuing core (used by the multi-core system). */
    unsigned coreId = 0;

    /** Decoded bank (filled by the controller on submit). */
    unsigned bank = 0;

    /** Decoded row within the bank. */
    std::uint64_t row = 0;
};

} // namespace mct

#endif // MCT_MEMCTRL_REQUEST_HH
