/**
 * @file
 * The NVM memory controller implementing the Mellow-Writes technique
 * family: prioritized read/write/eager queues with write-drain
 * thresholds (Table 9), write cancellation, bank-aware slow writes,
 * eager mellow writebacks, and wear-quota enforcement.
 *
 * The controller is event-driven: callers submit requests at
 * monotonically non-decreasing ticks and call advance() to let the
 * controller simulate bank activity up to a point in time. Completed
 * demand reads are reported through a completion list the CPU polls.
 *
 * Queues are kept per bank (FCFS within a bank) with global occupancy
 * counters enforcing the Table 9 capacities, which makes scheduling
 * decisions O(1) per bank.
 */

#ifndef MCT_MEMCTRL_CONTROLLER_HH
#define MCT_MEMCTRL_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/types.hh"
#include "memctrl/mellow_config.hh"
#include "memctrl/request.hh"
#include "memctrl/wear_quota.hh"
#include "nvm/device.hh"

namespace mct
{

class EventTrace;
class SpanTrace;
class StatRegistry;
class Serializer;
class Deserializer;

/** Tunables of the controller itself (Table 9 defaults). */
struct MemCtrlParams
{
    /** Read queue capacity (highest priority). */
    unsigned readQCap = 64;

    /** Write queue capacity. */
    unsigned writeQCap = 64;

    /** Write drain starts when the write queue reaches this level. */
    unsigned drainHigh = 64;

    /** Write drain stops when the queue falls back to this level. */
    unsigned drainLow = 32;

    /** Eager mellow write queue capacity (per channel). */
    unsigned eagerQCap = 32;

    /** Wear-quota slice length. */
    Tick quotaSliceTicks = 5 * tickUs;

    /**
     * Exponent of the write-energy law E(r) = E0 * r^exp. Slow writes
     * use lower power, so per-write energy decreases mildly with r.
     */
    double writeEnergyExp = -0.35;

    /**
     * Interrupt quota-restricted writes by pausing rather than
     * cancelling. The paper enforces "cancellation" so reads are not
     * blocked behind 4x pulses; with literal cancellation, every
     * aborted 4x write wastes wear and re-runs, which adds quota debt
     * and locks the controller into a restricted-slice spiral under
     * read-heavy traffic. Pausing serves reads just as promptly
     * while preserving the write's completed work.
     */
    bool quotaUsesPausing = true;
};

/** Cumulative controller statistics; snapshot-and-diff for windows. */
struct CtrlStats
{
    std::uint64_t readsCompleted = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t writesCompleted = 0;
    std::uint64_t fastWrites = 0;
    std::uint64_t slowWrites = 0;
    std::uint64_t quotaWrites = 0;
    std::uint64_t eagerWrites = 0;
    std::uint64_t cancellations = 0;
    std::uint64_t pausedWrites = 0;
    std::uint64_t scrubWrites = 0;
    std::uint64_t readQRejects = 0;
    std::uint64_t writeQRejects = 0;
    std::uint64_t eagerQRejects = 0;
    /** Sum over completed demand reads of (completion - arrival). */
    Tick readLatencySum = 0;
    /** Fast-write-equivalent wear added (includes cancelled work). */
    double wearAdded = 0.0;
    /** Sum of r^writeEnergyExp over all write activity (for energy). */
    double writeEnergyUnits = 0.0;
    /** Ticks any bank spent busy (utilization / dynamic energy). */
    Tick bankBusyTicks = 0;

    /** Component-wise difference (this - earlier snapshot). */
    CtrlStats delta(const CtrlStats &earlier) const;

    /** Mean demand read latency in ticks (0 when no reads). */
    double avgReadLatency() const;

    /** Checkpoint every counter. */
    void serialize(Serializer &s) const;

    /** Restore counters written by serialize(). */
    void deserialize(Deserializer &d);
};

/**
 * Event-driven NVM memory controller.
 */
class MemController
{
  public:
    /** Sentinel for "no scheduled event". */
    static constexpr Tick noEvent = std::numeric_limits<Tick>::max();

    MemController(NvmDevice &device, const MemCtrlParams &params,
                  const MellowConfig &config);

    /** Replace the active technique configuration at @p now. */
    void setConfig(const MellowConfig &config, Tick now);

    /** Currently active configuration. */
    const MellowConfig &config() const { return cfg; }

    /** Simulate bank activity up to @p to. */
    void advance(Tick to);

    /**
     * Submit a demand read. Returns false (and counts a reject) when
     * the read queue is full; the caller must retry later.
     */
    bool submitRead(Addr addr, Tick now, std::uint64_t id,
                    unsigned coreId = 0);

    /** Submit an LLC eviction writeback; false when the queue is full. */
    bool submitWrite(Addr addr, Tick now, unsigned coreId = 0);

    /** Submit an eager mellow writeback; false when the queue is full. */
    bool submitEager(Addr addr, Tick now, unsigned coreId = 0);

    /** True when another eager request can be accepted. */
    bool eagerSpace() const { return eagerCount < p.eagerQCap; }

    /** Free eager-queue slots. */
    unsigned
    eagerFree() const
    {
        return eagerCount >= p.eagerQCap ? 0u : p.eagerQCap - eagerCount;
    }

    /** True when another writeback can be accepted. */
    bool writeSpace() const { return writeCount < p.writeQCap; }

    /** Completed demand reads since the last drain of this list. */
    std::vector<std::pair<std::uint64_t, Tick>> &completedReads()
    {
        return completed;
    }

    /**
     * Tick of the next internally scheduled event (earliest in-flight
     * completion), or, when banks are idle but work is queued, the
     * current time; noEvent when fully idle and empty.
     */
    Tick nextEventTick() const;

    /** Current controller time. */
    Tick now() const { return curTick; }

    /** Cumulative statistics. */
    const CtrlStats &stats() const { return st; }

    /**
     * Register the controller's counters (and the wear quota's) under
     * @p prefix (e.g. "memctrl"). Closure-based: the request path
     * stays untouched.
     */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Record queue/quota transition events (writeback bursts, quota
     * throttling) into @p t; null detaches. Transitions are rare, so
     * the issue path pays one pointer test per drain flip at most.
     */
    void attachTrace(EventTrace *t);

    /** Record queue/bank stage marks on sampled request spans; null
     *  detaches. One pointer test per issued read when detached. */
    void attachSpans(SpanTrace *t) { spans = t; }

    /** The wear-quota state machine (read-only, for tests/benches). */
    const WearQuota &wearQuota() const { return quota; }

    /** Fault-injection hook: skew the wear quota's perceived clock
     *  (forwarded to WearQuota::setClockSkew; 1.0 restores honesty). */
    void setQuotaClockSkew(double factor) { quota.setClockSkew(factor); }

    /** Number of queued demand reads. */
    std::size_t readQSize() const { return readCount; }

    /** Number of queued writebacks. */
    std::size_t writeQSize() const { return writeCount; }

    /** Number of queued eager writebacks. */
    std::size_t eagerQSize() const { return eagerCount; }

    /** True while the forced write drain is active. */
    bool draining() const { return drainActive; }

    /** True when no request is queued or in flight. */
    bool idle() const;

    /** Checkpoint configuration, queues, in-flight and paused writes,
     *  retention/disturb tracking, quota clocks, and statistics. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize() (same bank geometry). */
    void deserialize(Deserializer &d);

  private:
    /** What a busy bank is doing. */
    struct InFlight
    {
        bool valid = false;
        Request req;
        Tick start = 0;
        Tick finish = 0;
        double ratio = 1.0;     // writes only
        bool cancellable = false;
        bool isQuotaWrite = false;
        /** Wear still to charge on completion (resumed writes have
         *  already been charged their pre-pause progress). */
        double wearFraction = 1.0;
    };

    NvmDevice &dev;
    MemCtrlParams p;
    MellowConfig cfg;
    WearQuota quota;
    Tick curTick = 0;

    // Per-bank FCFS queues with global occupancy counters.
    std::vector<std::deque<Request>> readQs;
    std::vector<std::deque<Request>> writeQs;
    std::vector<std::deque<Request>> eagerQs;
    unsigned readCount = 0;
    unsigned writeCount = 0;
    unsigned eagerCount = 0;

    /** A write interrupted by a read, waiting to resume. */
    struct PausedWrite
    {
        bool valid = false;
        Request req;
        double ratio = 1.0;
        Tick remaining = 0;
        bool isQuotaWrite = false;
        double fractionCharged = 0.0;
    };

    std::vector<InFlight> inflight; // one per bank
    std::vector<PausedWrite> paused; // one per bank

    /** Short-retention rows awaiting their refresh deadline. */
    std::vector<std::deque<std::pair<std::uint64_t, Tick>>>
        retentionFifo;

    /** Fast-read disturb counters per (bank, row); allocated only
     *  when fast disturbing reads are enabled. */
    std::vector<std::vector<std::uint16_t>> disturbCount;
    unsigned inflightCount = 0;
    std::vector<std::pair<std::uint64_t, Tick>> completed;
    bool drainActive = false;
    std::deque<Tick> recentActivates; // tFAW window
    std::uint64_t nextWriteId = 1ULL << 62;
    CtrlStats st;
    EventTrace *trace = nullptr;
    SpanTrace *spans = nullptr;
    std::uint64_t nDrains = 0;

    /** Finalize every in-flight op with finish <= t, oldest first. */
    void completeUpTo(Tick t);

    /** Finalize one in-flight op on @p bank. */
    void finish(unsigned bank);

    /** Try to start new operations on all idle banks at time t. */
    void tryIssueAll(Tick t);

    /** Try to start one operation on @p bank; true if issued. */
    bool tryIssue(unsigned bank, Tick t);

    /** Start a read on its bank at time t. */
    void issueRead(const Request &req, Tick t);

    /** Start a write on its bank at time t. */
    void issueWrite(const Request &req, Tick t, bool fromEager);

    /** Cancel the cancellable write in flight on @p bank at t. */
    void cancelWrite(unsigned bank, Tick t);

    /** Pause the cancellable write in flight on @p bank at t. */
    void pauseWrite(unsigned bank, Tick t);

    /** Resume @p bank's paused write at time t. */
    void resumeWrite(unsigned bank, Tick t);

    /** Earliest start honoring the tFAW activate window. */
    Tick activateConstrainedStart(Tick t);

    /** Update the drain hysteresis from the current queue level. */
    void updateDrain();

    /** Enqueue a forced refresh write of (bank, row). */
    void enqueueScrub(unsigned bank, std::uint64_t row);

    /** Issue scrubs for short-retention rows past their deadline. */
    void processRetention(unsigned bank, Tick t);

    /** Count a fast read's disturbance; scrub at the threshold. */
    void recordDisturb(unsigned bank, std::uint64_t row);

    /** Lazily size the disturb table (fast reads just enabled). */
    void ensureDisturbTable();

    /** Account a write's wear and energy, scaled by completed work. */
    void accountWrite(const Request &req, double fraction,
                      double ratio);
};

} // namespace mct

#endif // MCT_MEMCTRL_CONTROLLER_HH
