/**
 * @file
 * The combined Mellow-Writes technique configuration (paper Section
 * 3.1, Tables 2 and 3). This is the raw knob set consumed by the
 * memory controller and the cache hierarchy; the learning framework's
 * 10-dimensional vector encoding wraps this struct (mct/config.hh).
 */

#ifndef MCT_MEMCTRL_MELLOW_CONFIG_HH
#define MCT_MEMCTRL_MELLOW_CONFIG_HH

#include "common/serialize.hh"

namespace mct
{

/**
 * One point in the combined-technique configuration space.
 *
 * Constraints (paper Section 3.3.1):
 *  - technique parameters are meaningful only when the technique is
 *    enabled;
 *  - slowLatency >= fastLatency;
 *  - fastCancellation == true forces slowCancellation == true.
 */
struct MellowConfig
{
    /** Bank-Aware Mellow Writes enabled. */
    bool bankAware = false;

    /** Issue slow writes while the bank's write-queue backlog is
     *  below this many entries (1..4). */
    int bankAwareThreshold = 1;

    /** Eager Mellow Writes (eager writeback of dead LLC lines). */
    bool eagerWritebacks = false;

    /** Dead-position rule: the N LRU-end stack positions qualify for
     *  eager writeback when they receive < 1/eagerThreshold of hits
     *  (4..32). */
    int eagerThreshold = 4;

    /** Wear Quota enabled (the lifetime-guarantee fixup). */
    bool wearQuota = false;

    /** Wear Quota target lifetime in years (4..10). */
    double wearQuotaTarget = 8.0;

    /** Latency ratio of fast (normal) writes, 1.0..4.0. */
    double fastLatency = 1.0;

    /** Latency ratio of slow (mellow) writes, fastLatency..4.0. */
    double slowLatency = 1.0;

    /** Write cancellation applies to fast writes. */
    bool fastCancellation = false;

    /** Write cancellation applies to slow writes. */
    bool slowCancellation = false;

    /**
     * Extension beyond the paper's enumerated space: pause in-flight
     * writes for arriving reads instead of cancelling them (Qureshi
     * et al., HPCA'10 write pausing). Pausing preserves the work done
     * so far (no wasted wear) at slightly higher write completion
     * latency. Applies wherever cancellation would apply.
     */
    bool pauseInsteadOfCancel = false;

    /**
     * Extension (Table 1, write latency vs retention): issue normal
     * and slow writes with shortened pulses at the cost of periodic
     * scrub refreshes of the written rows.
     */
    bool shortRetentionWrites = false;

    /**
     * Extension (Table 1, read latency vs read disturbance): serve
     * row activations with the fast, disturbing read; rows scrub
     * after NvmParams::disturbThreshold fast reads.
     */
    bool fastDisturbingReads = false;

    /** The ratio forced during a wear-quota restricted slice. */
    static constexpr double quotaRatio = 4.0;

    /** True when the configuration satisfies all constraints. */
    bool
    valid() const
    {
        if (fastLatency < 1.0 || fastLatency > 4.0)
            return false;
        if (usesSlowWrites() &&
            (slowLatency < fastLatency || slowLatency > 4.0)) {
            return false;
        }
        if (fastCancellation && usesSlowWrites() && !slowCancellation)
            return false;
        if (bankAware &&
            (bankAwareThreshold < 1 || bankAwareThreshold > 4)) {
            return false;
        }
        if (eagerWritebacks && (eagerThreshold < 4 || eagerThreshold > 32))
            return false;
        if (wearQuota && (wearQuotaTarget < 4.0 || wearQuotaTarget > 10.0))
            return false;
        return true;
    }

    /** True when any enabled technique issues slow writes. */
    bool
    usesSlowWrites() const
    {
        return bankAware || eagerWritebacks;
    }

    bool operator==(const MellowConfig &) const = default;

    /** Checkpoint every knob. */
    void
    serialize(Serializer &s) const
    {
        s.putBool(bankAware);
        s.putI64(bankAwareThreshold);
        s.putBool(eagerWritebacks);
        s.putI64(eagerThreshold);
        s.putBool(wearQuota);
        s.putF64(wearQuotaTarget);
        s.putF64(fastLatency);
        s.putF64(slowLatency);
        s.putBool(fastCancellation);
        s.putBool(slowCancellation);
        s.putBool(pauseInsteadOfCancel);
        s.putBool(shortRetentionWrites);
        s.putBool(fastDisturbingReads);
    }

    /** Restore a configuration written by serialize(). */
    void
    deserialize(Deserializer &d)
    {
        bankAware = d.getBool();
        bankAwareThreshold = static_cast<int>(d.getI64());
        eagerWritebacks = d.getBool();
        eagerThreshold = static_cast<int>(d.getI64());
        wearQuota = d.getBool();
        wearQuotaTarget = d.getF64();
        fastLatency = d.getF64();
        slowLatency = d.getF64();
        fastCancellation = d.getBool();
        slowCancellation = d.getBool();
        pauseInsteadOfCancel = d.getBool();
        shortRetentionWrites = d.getBool();
        fastDisturbingReads = d.getBool();
    }
};

/** The paper's "default" system: fast writes only, no techniques. */
MellowConfig inline
defaultConfig()
{
    return MellowConfig{};
}

/**
 * The paper's "best static policy" (Table 5/10 row "static"):
 * bank-aware(1) + eager(32) + wear quota(8y), fast 1.0, slow 3.0,
 * cancellation on slow writes only.
 */
MellowConfig inline
staticBaselineConfig()
{
    MellowConfig c;
    c.bankAware = true;
    c.bankAwareThreshold = 1;
    c.eagerWritebacks = true;
    c.eagerThreshold = 32;
    c.wearQuota = true;
    c.wearQuotaTarget = 8.0;
    c.fastLatency = 1.0;
    c.slowLatency = 3.0;
    c.fastCancellation = false;
    c.slowCancellation = true;
    return c;
}

} // namespace mct

#endif // MCT_MEMCTRL_MELLOW_CONFIG_HH
