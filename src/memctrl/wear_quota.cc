#include "memctrl/wear_quota.hh"

#include <algorithm>
#include <cmath>

#include "common/instrument.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

WearQuota::WearQuota(Tick sliceTicks, double totalWearCapacity)
    : slice(sliceTicks), capacity(totalWearCapacity)
{
    if (slice == 0)
        mct_fatal("WearQuota: slice length must be positive");
    if (capacity <= 0.0)
        mct_fatal("WearQuota: wear capacity must be positive");
}

void
WearQuota::setClockSkew(double factor)
{
    if (!std::isfinite(factor) || factor <= 0.0)
        factor = 1.0;
    skew = std::min(std::max(factor, 0.01), 100.0);
}

void
WearQuota::configure(bool enabled, double targetYears, Tick now,
                     double currentWear)
{
    isEnabled = enabled;
    isRestricted = false;
    armTick = now;
    // A non-finite device total would poison every later budget
    // comparison; arm from zero instead.
    armWear = std::isfinite(currentWear) ? currentWear : 0.0;
    sliceStart = now;
    lastUsedWear = 0.0;
    lastAllowedWear = 0.0;
    if (enabled) {
        if (targetYears <= 0.0)
            mct_fatal("WearQuota: target lifetime must be positive");
        ratePerSec = capacity / (targetYears * secondsPerYear);
    } else {
        ratePerSec = 0.0;
    }
}

void
WearQuota::update(Tick now, double currentWear)
{
    if (!isEnabled || now < sliceStart || now < sliceStart + slice)
        return;
    // We only re-evaluate at slice boundaries; catch up in whole
    // slices (arithmetically, so long idle gaps stay O(1)).
    sliceStart += ((now - sliceStart) / slice) * slice;
    const double elapsedSec =
        static_cast<double>(sliceStart - armTick) /
        static_cast<double>(tickSec) * skew;
    const double allowed = ratePerSec * elapsedSec;
    // Wear is monotonic and sampled after arming, so used is
    // non-negative on an honest device; clamp defensively so a
    // corrupted total can never grant unbounded budget.
    const double used = std::isfinite(currentWear)
        ? std::max(currentWear - armWear, 0.0)
        : lastUsedWear;
    lastUsedWear = used;
    lastAllowedWear = allowed;
    const bool over = used > allowed;
    if (over && !isRestricted)
        ++nRestricted;
    if (trace && over != isRestricted)
        trace->record(TraceEventType::QuotaThrottle, over ? 1.0 : 0.0,
                      static_cast<double>(nRestricted), ratePerSec);
    isRestricted = over;
}

void
WearQuota::registerStats(StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addGauge(prefix + ".enabled",
                 [this] { return isEnabled ? 1.0 : 0.0; });
    reg.addGauge(prefix + ".restricted",
                 [this] { return isRestricted ? 1.0 : 0.0; },
                 "currently inside a restricted (4x-write) slice");
    reg.addCounter(prefix + ".restricted_slices",
                   [this] { return nRestricted; },
                   "restricted slices entered since arming");
    reg.addGauge(prefix + ".budget_rate",
                 [this] { return ratePerSec; },
                 "allowed wear per second for the lifetime target");
    reg.addGauge(prefix + ".used", [this] { return lastUsedWear; },
                 "wear counted against the budget at the last update");
    reg.addGauge(prefix + ".allowed",
                 [this] { return lastAllowedWear; },
                 "cumulative wear budget at the last update");
    reg.addGauge(prefix + ".clock_skew", [this] { return skew; },
                 "fault-injected clock multiplier (1 = honest)");
}

void
WearQuota::serialize(Serializer &s) const
{
    s.putU64(slice);
    s.putF64(capacity);
    s.putBool(isEnabled);
    s.putBool(isRestricted);
    s.putU64(armTick);
    s.putF64(armWear);
    s.putU64(sliceStart);
    s.putF64(ratePerSec);
    s.putU64(nRestricted);
    s.putF64(skew);
    s.putF64(lastUsedWear);
    s.putF64(lastAllowedWear);
}

void
WearQuota::deserialize(Deserializer &d)
{
    slice = d.getU64();
    capacity = d.getF64();
    isEnabled = d.getBool();
    isRestricted = d.getBool();
    armTick = d.getU64();
    armWear = d.getF64();
    sliceStart = d.getU64();
    ratePerSec = d.getF64();
    nRestricted = d.getU64();
    skew = d.getF64();
    lastUsedWear = d.getF64();
    lastAllowedWear = d.getF64();
}

} // namespace mct
