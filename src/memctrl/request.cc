#include "memctrl/request.hh"

namespace mct
{

std::string
toString(ReqSource source)
{
    switch (source) {
      case ReqSource::Demand:
        return "demand";
      case ReqSource::Writeback:
        return "writeback";
      case ReqSource::Eager:
        return "eager";
      case ReqSource::Scrub:
        return "scrub";
    }
    return "unknown";
}

} // namespace mct
