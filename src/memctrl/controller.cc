#include "memctrl/controller.hh"

#include <algorithm>
#include <cmath>

#include "common/instrument.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

namespace
{

/**
 * A write may only be cancelled while at least this fraction of its
 * pulse remains; cancelling a nearly-finished write wastes wear for no
 * latency benefit (cf. write cancellation, Qureshi et al. HPCA'10).
 */
constexpr double minCancelRemaining = 0.25;

} // namespace

CtrlStats
CtrlStats::delta(const CtrlStats &earlier) const
{
    CtrlStats d;
    d.readsCompleted = readsCompleted - earlier.readsCompleted;
    d.rowHits = rowHits - earlier.rowHits;
    d.writesCompleted = writesCompleted - earlier.writesCompleted;
    d.fastWrites = fastWrites - earlier.fastWrites;
    d.slowWrites = slowWrites - earlier.slowWrites;
    d.quotaWrites = quotaWrites - earlier.quotaWrites;
    d.eagerWrites = eagerWrites - earlier.eagerWrites;
    d.cancellations = cancellations - earlier.cancellations;
    d.pausedWrites = pausedWrites - earlier.pausedWrites;
    d.scrubWrites = scrubWrites - earlier.scrubWrites;
    d.readQRejects = readQRejects - earlier.readQRejects;
    d.writeQRejects = writeQRejects - earlier.writeQRejects;
    d.eagerQRejects = eagerQRejects - earlier.eagerQRejects;
    d.readLatencySum = readLatencySum - earlier.readLatencySum;
    d.wearAdded = wearAdded - earlier.wearAdded;
    d.writeEnergyUnits = writeEnergyUnits - earlier.writeEnergyUnits;
    d.bankBusyTicks = bankBusyTicks - earlier.bankBusyTicks;
    return d;
}

double
CtrlStats::avgReadLatency() const
{
    if (readsCompleted == 0)
        return 0.0;
    return static_cast<double>(readLatencySum) /
           static_cast<double>(readsCompleted);
}

MemController::MemController(NvmDevice &device, const MemCtrlParams &params,
                             const MellowConfig &config)
    : dev(device), p(params), cfg(config),
      quota(params.quotaSliceTicks,
            device.params().bankWearCapacity() * device.numBanks())
{
    if (!cfg.valid())
        mct_fatal("MemController: invalid MellowConfig");
    if (p.drainLow > p.drainHigh || p.drainHigh > p.writeQCap)
        mct_fatal("MemController: bad drain thresholds");
    const unsigned nb = dev.numBanks();
    inflight.resize(nb);
    paused.resize(nb);
    retentionFifo.resize(nb);
    readQs.resize(nb);
    writeQs.resize(nb);
    eagerQs.resize(nb);
    quota.configure(cfg.wearQuota, cfg.wearQuotaTarget, 0,
                    dev.totalWear());
}

void
MemController::setConfig(const MellowConfig &config, Tick now)
{
    if (!config.valid())
        mct_fatal("MemController::setConfig: invalid MellowConfig");
    advance(now);
    const bool quotaChanged = config.wearQuota != cfg.wearQuota ||
        config.wearQuotaTarget != cfg.wearQuotaTarget;
    cfg = config;
    if (quotaChanged) {
        quota.configure(cfg.wearQuota, cfg.wearQuotaTarget, curTick,
                        dev.totalWear());
    }
    tryIssueAll(curTick);
}

void
MemController::advance(Tick to)
{
    if (to < curTick)
        return;
    // Retention scrubs whose deadline falls inside this window become
    // issueable work even on an otherwise idle controller.
    for (unsigned b = 0; b < retentionFifo.size(); ++b) {
        if (!retentionFifo[b].empty())
            processRetention(b, to);
    }
    // Banks can only become issueable after a completion (submits
    // already call tryIssue), except when everything was idle.
    if (inflightCount == 0 && (readCount || writeCount || eagerCount))
        tryIssueAll(curTick);
    while (inflightCount > 0) {
        Tick earliest = noEvent;
        for (const auto &fl : inflight) {
            if (fl.valid)
                earliest = std::min(earliest, fl.finish);
        }
        if (earliest > to)
            break;
        curTick = earliest;
        completeUpTo(curTick);
        tryIssueAll(curTick);
    }
    curTick = std::max(curTick, to);
}

bool
MemController::submitRead(Addr addr, Tick now, std::uint64_t id,
                          unsigned coreId)
{
    advance(now);
    if (readCount >= p.readQCap) {
        ++st.readQRejects;
        return false;
    }
    Request req;
    req.addr = addr;
    req.isWrite = false;
    req.source = ReqSource::Demand;
    req.arrival = curTick;
    req.id = id;
    req.coreId = coreId;
    const NvmLocation loc = dev.decode(addr);
    req.bank = loc.bank;
    req.row = loc.row;

    // Write cancellation: an arriving read may abort an in-progress
    // cancellable write on its bank (Section 2, "with or without
    // write cancellation").
    InFlight &fl = inflight[req.bank];
    if (fl.valid && fl.req.isWrite && fl.cancellable) {
        const Tick total = fl.finish - fl.start;
        const Tick remaining = fl.finish - curTick;
        if (total > 0 &&
            static_cast<double>(remaining) >
                minCancelRemaining * static_cast<double>(total)) {
            const bool pausePreferred =
                cfg.pauseInsteadOfCancel ||
                (fl.isQuotaWrite && p.quotaUsesPausing);
            if (pausePreferred && !paused[req.bank].valid)
                pauseWrite(req.bank, curTick);
            else
                cancelWrite(req.bank, curTick);
        }
    }
    readQs[req.bank].push_back(req);
    ++readCount;
    tryIssue(req.bank, curTick);
    return true;
}

bool
MemController::submitWrite(Addr addr, Tick now, unsigned coreId)
{
    advance(now);
    if (writeCount >= p.writeQCap) {
        ++st.writeQRejects;
        return false;
    }
    Request req;
    req.addr = addr;
    req.isWrite = true;
    req.source = ReqSource::Writeback;
    req.arrival = curTick;
    req.id = nextWriteId++;
    req.coreId = coreId;
    const NvmLocation loc = dev.decode(addr);
    req.bank = loc.bank;
    req.row = loc.row;
    writeQs[req.bank].push_back(req);
    ++writeCount;
    updateDrain();
    if (drainActive)
        tryIssueAll(curTick);
    else
        tryIssue(req.bank, curTick);
    return true;
}

bool
MemController::submitEager(Addr addr, Tick now, unsigned coreId)
{
    advance(now);
    if (eagerCount >= p.eagerQCap) {
        ++st.eagerQRejects;
        return false;
    }
    Request req;
    req.addr = addr;
    req.isWrite = true;
    req.source = ReqSource::Eager;
    req.arrival = curTick;
    req.id = nextWriteId++;
    req.coreId = coreId;
    const NvmLocation loc = dev.decode(addr);
    req.bank = loc.bank;
    req.row = loc.row;
    eagerQs[req.bank].push_back(req);
    ++eagerCount;
    tryIssue(req.bank, curTick);
    return true;
}

Tick
MemController::nextEventTick() const
{
    if (inflightCount > 0) {
        Tick earliest = noEvent;
        for (const auto &fl : inflight) {
            if (fl.valid)
                earliest = std::min(earliest, fl.finish);
        }
        return earliest;
    }
    if (readCount || writeCount || eagerCount)
        return curTick;
    return noEvent;
}

bool
MemController::idle() const
{
    return inflightCount == 0 && readCount == 0 && writeCount == 0 &&
           eagerCount == 0;
}

void
MemController::completeUpTo(Tick t)
{
    // Finalize in chronological order so statistics are well ordered.
    while (inflightCount > 0) {
        int bank = -1;
        Tick best = noEvent;
        for (unsigned b = 0; b < inflight.size(); ++b) {
            if (inflight[b].valid && inflight[b].finish <= t &&
                inflight[b].finish < best) {
                best = inflight[b].finish;
                bank = static_cast<int>(b);
            }
        }
        if (bank < 0)
            break;
        finish(static_cast<unsigned>(bank));
    }
}

void
MemController::finish(unsigned bankIdx)
{
    InFlight &fl = inflight[bankIdx];
    if (!fl.valid)
        mct_panic("finish() on idle bank ", bankIdx);
    Bank &bank = dev.bank(bankIdx);
    bank.busyTicks += fl.finish - fl.start;
    st.bankBusyTicks += fl.finish - fl.start;

    if (fl.req.isWrite) {
        accountWrite(fl.req, fl.wearFraction, fl.ratio);
        ++st.writesCompleted;
        ++bank.writes;
        if (fl.isQuotaWrite)
            ++st.quotaWrites;
        else if (fl.ratio > cfg.fastLatency)
            ++st.slowWrites;
        else
            ++st.fastWrites;
        if (fl.req.source == ReqSource::Eager)
            ++st.eagerWrites;
        if (fl.req.source == ReqSource::Scrub)
            ++st.scrubWrites;
        if (cfg.fastDisturbingReads && !disturbCount.empty()) {
            // Writing a row restores it; the disturb budget resets.
            auto &row = disturbCount[bankIdx];
            if (fl.req.row < row.size())
                row[fl.req.row] = 0;
        }
        bank.writing = false;
    } else {
        ++st.readsCompleted;
        ++bank.reads;
        st.readLatencySum += fl.finish - fl.req.arrival;
        completed.emplace_back(fl.req.id, fl.finish);
    }
    fl.valid = false;
    --inflightCount;
}

void
MemController::tryIssueAll(Tick t)
{
    for (unsigned b = 0; b < inflight.size(); ++b) {
        if (!inflight[b].valid)
            tryIssue(b, t);
    }
}

bool
MemController::tryIssue(unsigned bank, Tick t)
{
    if (inflight[bank].valid)
        return false;
    processRetention(bank, t);
    auto &rq = readQs[bank];
    auto &wq = writeQs[bank];
    auto &eq = eagerQs[bank];
    if (rq.empty() && wq.empty() && eq.empty() && !paused[bank].valid)
        return false;

    if (quota.enabled())
        quota.update(t, dev.totalWear());

    // Forced write drain: the queue hit its high watermark, so writes
    // take precedence until the level falls to the low watermark.
    if (drainActive && !wq.empty()) {
        Request req = wq.front();
        wq.pop_front();
        --writeCount;
        updateDrain();
        issueWrite(req, t, false);
        return true;
    }

    // Reads have the highest priority (Table 9).
    if (!rq.empty()) {
        Request req = rq.front();
        rq.pop_front();
        --readCount;
        issueRead(req, t);
        return true;
    }

    // A paused write resumes before any new write is dequeued.
    if (paused[bank].valid) {
        resumeWrite(bank, t);
        return true;
    }

    // Opportunistic writes when the bank has no pending reads.
    if (!wq.empty()) {
        Request req = wq.front();
        wq.pop_front();
        --writeCount;
        updateDrain();
        issueWrite(req, t, false);
        return true;
    }

    // Eager mellow writes have the lowest priority and never drain.
    if (!eq.empty()) {
        Request req = eq.front();
        eq.pop_front();
        --eagerCount;
        issueWrite(req, t, true);
        return true;
    }
    return false;
}

void
MemController::issueRead(const Request &req, Tick t)
{
    Bank &bank = dev.bank(req.bank);
    Tick start = std::max(t, bank.busyUntil);
    const bool hit = bank.openRow == static_cast<std::int64_t>(req.row);
    if (hit) {
        ++st.rowHits;
    } else {
        start = std::max(start, activateConstrainedStart(start));
        bank.openRow = static_cast<std::int64_t>(req.row);
        recentActivates.push_back(start);
        if (recentActivates.size() > 4)
            recentActivates.pop_front();
    }
    if (cfg.fastDisturbingReads)
        recordDisturb(req.bank, req.row);
    // The device owns (and span-attributes) the array time.
    const Tick lat = dev.accessRead(req.bank, hit,
                                    cfg.fastDisturbingReads, req.id,
                                    start);
    const Tick finishAt = start + lat + dev.params().tBURST;
    if (spans) {
        spans->stageMark(req.id, SpanStage::CtrlQueue, req.arrival,
                         start);
        spans->stageMark(req.id, SpanStage::Bank, start, finishAt);
    }
    InFlight &fl = inflight[req.bank];
    fl.valid = true;
    fl.req = req;
    fl.start = start;
    fl.finish = finishAt;
    fl.cancellable = false;
    fl.isQuotaWrite = false;
    fl.wearFraction = 1.0;
    bank.busyUntil = finishAt;
    bank.writing = false;
    ++inflightCount;
}

void
MemController::issueWrite(const Request &req, Tick t, bool fromEager)
{
    Bank &bank = dev.bank(req.bank);
    const Tick start = std::max(t, bank.busyUntil);

    double ratio;
    bool cancellable;
    bool quotaWrite = false;
    if (req.source == ReqSource::Scrub) {
        // Refresh writes restore full retention: nominal pulse, not
        // interruptible (they are correctness-critical).
        ratio = 1.0;
        cancellable = false;
    } else if (quota.enabled() && quota.restricted()) {
        // Restricted slice: slowest writes with enforced cancellation
        // so reads do not starve behind 4x pulses.
        ratio = MellowConfig::quotaRatio;
        cancellable = true;
        quotaWrite = true;
    } else if (fromEager) {
        ratio = cfg.slowLatency;
        cancellable = cfg.slowCancellation;
    } else if (cfg.bankAware &&
               writeQs[req.bank].size() <
                   static_cast<std::size_t>(cfg.bankAwareThreshold)) {
        // Bank-aware mellow writes: the bank backlog is shallow, so a
        // slow write will not block urgent work.
        ratio = cfg.slowLatency;
        cancellable = cfg.slowCancellation;
    } else {
        ratio = cfg.fastLatency;
        cancellable = cfg.fastCancellation;
    }

    Tick pulse = dev.params().writePulse(ratio);
    const bool shortRetention = cfg.shortRetentionWrites &&
        req.source != ReqSource::Scrub && !quotaWrite;
    if (shortRetention) {
        pulse = static_cast<Tick>(static_cast<double>(pulse) *
                                  dev.params().retentionRatio);
    }
    if (bank.latencyFactor != 1.0) {
        pulse = std::max<Tick>(
            1, static_cast<Tick>(static_cast<double>(pulse) *
                                 bank.latencyFactor));
    }
    const Tick finishAt = start + pulse + dev.params().tBURST;
    InFlight &fl = inflight[req.bank];
    fl.valid = true;
    fl.req = req;
    fl.start = start;
    fl.finish = finishAt;
    fl.ratio = ratio;
    fl.cancellable = cancellable;
    fl.isQuotaWrite = quotaWrite;
    fl.wearFraction = 1.0;
    if (shortRetention) {
        // The written row must be refreshed before its (scaled)
        // retention deadline.
        retentionFifo[req.bank].emplace_back(
            req.row, finishAt + dev.params().retentionTime);
        if (retentionFifo[req.bank].size() > 65536)
            retentionFifo[req.bank].pop_front();
    }
    bank.busyUntil = finishAt;
    bank.writing = true;
    bank.writeStart = start;
    bank.writeRatio = ratio;
    ++inflightCount;
}

void
MemController::cancelWrite(unsigned bankIdx, Tick t)
{
    InFlight &fl = inflight[bankIdx];
    if (!fl.valid || !fl.req.isWrite)
        mct_panic("cancelWrite: no write in flight on bank ", bankIdx);
    Bank &bank = dev.bank(bankIdx);

    // The aborted pulse still wears the cells in proportion to its
    // progress, and the full write must be redone later: this is the
    // lifetime cost of write cancellation. For a previously-paused
    // write only the in-flight segment's share remains chargeable.
    const Tick total = fl.finish - fl.start;
    double fraction = 0.0;
    if (total > 0 && t > fl.start) {
        fraction = static_cast<double>(t - fl.start) /
                   static_cast<double>(total);
        fraction = std::min(1.0, fraction);
    }
    accountWrite(fl.req, fraction * fl.wearFraction, fl.ratio);
    ++st.cancellations;

    const Tick busy = (t > fl.start ? t - fl.start : 0);
    bank.busyTicks += busy;
    st.bankBusyTicks += busy;
    bank.busyUntil = t;
    bank.writing = false;

    // Re-queue at the front of the originating queue; the entry's
    // buffer slot was never released, so a transient overflow past the
    // configured capacity is acceptable.
    if (fl.req.source == ReqSource::Eager) {
        eagerQs[bankIdx].push_front(fl.req);
        ++eagerCount;
    } else {
        writeQs[bankIdx].push_front(fl.req);
        ++writeCount;
        updateDrain();
    }
    fl.valid = false;
    --inflightCount;
}

void
MemController::pauseWrite(unsigned bankIdx, Tick t)
{
    InFlight &fl = inflight[bankIdx];
    if (!fl.valid || !fl.req.isWrite)
        mct_panic("pauseWrite: no write in flight on bank ", bankIdx);
    Bank &bank = dev.bank(bankIdx);

    const Tick total = fl.finish - fl.start;
    double fraction = 0.0;
    if (total > 0 && t > fl.start) {
        fraction = static_cast<double>(t - fl.start) /
                   static_cast<double>(total);
        fraction = std::min(1.0, fraction);
    }
    PausedWrite &pw = paused[bankIdx];
    // Work done so far is preserved (that is the point of pausing);
    // charge only the new progress of this pulse segment. A resumed
    // write's earlier progress was already charged (wearFraction).
    const double priorCharge = 1.0 - fl.wearFraction;
    const double charge = priorCharge + fraction * fl.wearFraction;
    accountWrite(fl.req, charge - priorCharge, fl.ratio);

    pw.valid = true;
    pw.req = fl.req;
    pw.ratio = fl.ratio;
    pw.remaining = fl.finish - t;
    pw.isQuotaWrite = fl.isQuotaWrite;
    pw.fractionCharged = charge;
    ++st.pausedWrites;

    const Tick busy = (t > fl.start ? t - fl.start : 0);
    bank.busyTicks += busy;
    st.bankBusyTicks += busy;
    bank.busyUntil = t;
    bank.writing = false;
    fl.valid = false;
    --inflightCount;
}

void
MemController::resumeWrite(unsigned bankIdx, Tick t)
{
    PausedWrite &pw = paused[bankIdx];
    if (!pw.valid)
        mct_panic("resumeWrite: nothing paused on bank ", bankIdx);
    Bank &bank = dev.bank(bankIdx);
    const Tick start = std::max(t, bank.busyUntil);
    const Tick finishAt = start + pw.remaining;
    InFlight &fl = inflight[bankIdx];
    fl.valid = true;
    fl.req = pw.req;
    fl.start = start;
    fl.finish = finishAt;
    fl.ratio = pw.ratio;
    // A resumed write may be paused again by a later read.
    fl.cancellable = true;
    fl.isQuotaWrite = pw.isQuotaWrite;
    fl.wearFraction = 1.0 - pw.fractionCharged;
    bank.busyUntil = finishAt;
    bank.writing = true;
    bank.writeStart = start;
    bank.writeRatio = pw.ratio;
    ++inflightCount;
    pw.valid = false;
}

Tick
MemController::activateConstrainedStart(Tick t)
{
    if (recentActivates.size() < 4)
        return t;
    return std::max(t, recentActivates.front() + dev.params().tFAW);
}

void
MemController::updateDrain()
{
    if (!drainActive && writeCount >= p.drainHigh) {
        drainActive = true;
        ++nDrains;
        if (trace)
            trace->record(TraceEventType::WritebackBurst, 1.0,
                          static_cast<double>(writeCount),
                          static_cast<double>(nDrains));
    } else if (drainActive && writeCount <= p.drainLow) {
        drainActive = false;
        if (trace)
            trace->record(TraceEventType::WritebackBurst, 0.0,
                          static_cast<double>(writeCount),
                          static_cast<double>(nDrains));
    }
}

void
MemController::enqueueScrub(unsigned bankIdx, std::uint64_t row)
{
    Request req;
    // Reconstruct a representative line address inside the row.
    const NvmParams &np = dev.params();
    const std::uint64_t globalRow =
        row * np.numBanks + bankIdx;
    req.addr = globalRow * np.rowBytes;
    req.isWrite = true;
    req.source = ReqSource::Scrub;
    req.arrival = curTick;
    req.id = nextWriteId++;
    req.bank = bankIdx;
    req.row = row;
    // Scrubs are mandatory: they may transiently exceed the write
    // queue capacity, like re-queued cancelled writes.
    writeQs[bankIdx].push_back(req);
    ++writeCount;
    updateDrain();
}

void
MemController::processRetention(unsigned bankIdx, Tick t)
{
    auto &fifo = retentionFifo[bankIdx];
    while (!fifo.empty() && fifo.front().second <= t) {
        enqueueScrub(bankIdx, fifo.front().first);
        fifo.pop_front();
    }
}

void
MemController::ensureDisturbTable()
{
    if (!disturbCount.empty())
        return;
    disturbCount.assign(
        dev.numBanks(),
        std::vector<std::uint16_t>(dev.params().rowsPerBank(), 0));
}

void
MemController::recordDisturb(unsigned bankIdx, std::uint64_t row)
{
    ensureDisturbTable();
    auto &counts = disturbCount[bankIdx];
    if (row >= counts.size())
        mct_panic("recordDisturb: row out of range");
    if (++counts[row] >= dev.params().disturbThreshold) {
        counts[row] = 0;
        enqueueScrub(bankIdx, row);
    }
}

void
MemController::accountWrite(const Request &req, double fraction,
                            double ratio)
{
    const double wear = fraction * NvmParams::wearOfWrite(ratio);
    dev.addWear(req.bank, req.row, wear);
    st.wearAdded += wear;
    st.writeEnergyUnits += fraction * std::pow(ratio, p.writeEnergyExp);
}

void
MemController::attachTrace(EventTrace *t)
{
    trace = t;
    quota.attachTrace(t);
}

void
MemController::registerStats(StatRegistry &reg,
                             const std::string &prefix) const
{
    const CtrlStats *s = &st;
    reg.addCounter(prefix + ".reads_completed",
                   [s] { return s->readsCompleted; });
    reg.addCounter(prefix + ".row_hits", [s] { return s->rowHits; });
    reg.addGauge(prefix + ".row_hit_rate", [s] {
        return s->readsCompleted
                   ? static_cast<double>(s->rowHits) /
                         static_cast<double>(s->readsCompleted)
                   : 0.0;
    });
    reg.addGauge(prefix + ".avg_read_latency_ns", [s] {
        return s->avgReadLatency() * nsPerTick;
    });
    reg.addCounter(prefix + ".writes_completed",
                   [s] { return s->writesCompleted; });
    reg.addCounter(prefix + ".fast_writes",
                   [s] { return s->fastWrites; });
    reg.addCounter(prefix + ".slow_writes",
                   [s] { return s->slowWrites; });
    reg.addCounter(prefix + ".quota_writes",
                   [s] { return s->quotaWrites; },
                   "forced 4x writes in restricted slices");
    reg.addCounter(prefix + ".eager_writes",
                   [s] { return s->eagerWrites; });
    reg.addCounter(prefix + ".scrub_writes",
                   [s] { return s->scrubWrites; },
                   "retention / disturbance refreshes");
    reg.addCounter(prefix + ".cancellations",
                   [s] { return s->cancellations; });
    reg.addCounter(prefix + ".paused_writes",
                   [s] { return s->pausedWrites; });
    reg.addCounter(prefix + ".readq_rejects",
                   [s] { return s->readQRejects; });
    reg.addCounter(prefix + ".writeq_rejects",
                   [s] { return s->writeQRejects; });
    reg.addCounter(prefix + ".eagerq_rejects",
                   [s] { return s->eagerQRejects; });
    reg.addGauge(prefix + ".wear_added", [s] { return s->wearAdded; },
                 "fast-write-equivalent line writes");
    reg.addCounter(prefix + ".bank_busy_ticks",
                   [s] { return s->bankBusyTicks; });
    reg.addCounter(prefix + ".drain_bursts", [this] { return nDrains; },
                   "write-drain bursts entered");
    reg.addGauge(prefix + ".readq_level",
                 [this] { return static_cast<double>(readCount); });
    reg.addGauge(prefix + ".writeq_level",
                 [this] { return static_cast<double>(writeCount); });
    reg.addGauge(prefix + ".eagerq_level",
                 [this] { return static_cast<double>(eagerCount); });
    reg.addGauge(prefix + ".draining",
                 [this] { return drainActive ? 1.0 : 0.0; });
    quota.registerStats(reg, prefix + ".quota");
}

namespace
{

void
serializeRequest(Serializer &s, const Request &r)
{
    s.putU64(r.addr);
    s.putBool(r.isWrite);
    s.putU8(static_cast<std::uint8_t>(r.source));
    s.putU64(r.arrival);
    s.putU64(r.id);
    s.putU32(r.coreId);
    s.putU32(r.bank);
    s.putU64(r.row);
}

void
deserializeRequest(Deserializer &d, Request &r)
{
    r.addr = d.getU64();
    r.isWrite = d.getBool();
    r.source = static_cast<ReqSource>(d.getU8());
    r.arrival = d.getU64();
    r.id = d.getU64();
    r.coreId = d.getU32();
    r.bank = d.getU32();
    r.row = d.getU64();
}

void
serializeRequestQueues(Serializer &s,
                       const std::vector<std::deque<Request>> &qs)
{
    s.putU64(qs.size());
    for (const std::deque<Request> &q : qs) {
        s.putU64(q.size());
        for (const Request &r : q)
            serializeRequest(s, r);
    }
}

void
deserializeRequestQueues(Deserializer &d,
                         std::vector<std::deque<Request>> &qs)
{
    if (d.getU64() != qs.size())
        mct_panic("checkpoint controller bank-count mismatch");
    for (std::deque<Request> &q : qs) {
        q.clear();
        const std::uint64_t len = d.getU64();
        for (std::uint64_t i = 0; i < len && d.ok(); ++i) {
            Request r;
            deserializeRequest(d, r);
            q.push_back(r);
        }
    }
}

} // namespace

void
MemController::serialize(Serializer &s) const
{
    cfg.serialize(s);
    quota.serialize(s);
    s.putU64(curTick);
    serializeRequestQueues(s, readQs);
    serializeRequestQueues(s, writeQs);
    serializeRequestQueues(s, eagerQs);
    s.putU32(readCount);
    s.putU32(writeCount);
    s.putU32(eagerCount);
    s.putU64(inflight.size());
    for (const InFlight &f : inflight) {
        s.putBool(f.valid);
        serializeRequest(s, f.req);
        s.putU64(f.start);
        s.putU64(f.finish);
        s.putF64(f.ratio);
        s.putBool(f.cancellable);
        s.putBool(f.isQuotaWrite);
        s.putF64(f.wearFraction);
    }
    s.putU64(paused.size());
    for (const PausedWrite &w : paused) {
        s.putBool(w.valid);
        serializeRequest(s, w.req);
        s.putF64(w.ratio);
        s.putU64(w.remaining);
        s.putBool(w.isQuotaWrite);
        s.putF64(w.fractionCharged);
    }
    s.putU64(retentionFifo.size());
    for (const auto &fifo : retentionFifo) {
        s.putU64(fifo.size());
        for (const auto &[row, deadline] : fifo) {
            s.putU64(row);
            s.putU64(deadline);
        }
    }
    s.putU64(disturbCount.size());
    for (const std::vector<std::uint16_t> &rows : disturbCount) {
        s.putU64(rows.size());
        for (const std::uint16_t c : rows)
            s.putU32(c);
    }
    s.putU32(inflightCount);
    s.putU64(completed.size());
    for (const auto &[id, tick] : completed) {
        s.putU64(id);
        s.putU64(tick);
    }
    s.putBool(drainActive);
    s.putU64(recentActivates.size());
    for (const Tick t : recentActivates)
        s.putU64(t);
    s.putU64(nextWriteId);
    st.serialize(s);
    s.putU64(nDrains);
}

void
CtrlStats::serialize(Serializer &s) const
{
    s.putU64(readsCompleted);
    s.putU64(rowHits);
    s.putU64(writesCompleted);
    s.putU64(fastWrites);
    s.putU64(slowWrites);
    s.putU64(quotaWrites);
    s.putU64(eagerWrites);
    s.putU64(cancellations);
    s.putU64(pausedWrites);
    s.putU64(scrubWrites);
    s.putU64(readQRejects);
    s.putU64(writeQRejects);
    s.putU64(eagerQRejects);
    s.putU64(readLatencySum);
    s.putF64(wearAdded);
    s.putF64(writeEnergyUnits);
    s.putU64(bankBusyTicks);
}

void
CtrlStats::deserialize(Deserializer &d)
{
    readsCompleted = d.getU64();
    rowHits = d.getU64();
    writesCompleted = d.getU64();
    fastWrites = d.getU64();
    slowWrites = d.getU64();
    quotaWrites = d.getU64();
    eagerWrites = d.getU64();
    cancellations = d.getU64();
    pausedWrites = d.getU64();
    scrubWrites = d.getU64();
    readQRejects = d.getU64();
    writeQRejects = d.getU64();
    eagerQRejects = d.getU64();
    readLatencySum = d.getU64();
    wearAdded = d.getF64();
    writeEnergyUnits = d.getF64();
    bankBusyTicks = d.getU64();
}

void
MemController::deserialize(Deserializer &d)
{
    cfg.deserialize(d);
    quota.deserialize(d);
    curTick = d.getU64();
    deserializeRequestQueues(d, readQs);
    deserializeRequestQueues(d, writeQs);
    deserializeRequestQueues(d, eagerQs);
    readCount = d.getU32();
    writeCount = d.getU32();
    eagerCount = d.getU32();
    if (d.getU64() != inflight.size())
        mct_panic("checkpoint controller in-flight size mismatch");
    for (InFlight &f : inflight) {
        f.valid = d.getBool();
        deserializeRequest(d, f.req);
        f.start = d.getU64();
        f.finish = d.getU64();
        f.ratio = d.getF64();
        f.cancellable = d.getBool();
        f.isQuotaWrite = d.getBool();
        f.wearFraction = d.getF64();
    }
    if (d.getU64() != paused.size())
        mct_panic("checkpoint controller paused size mismatch");
    for (PausedWrite &w : paused) {
        w.valid = d.getBool();
        deserializeRequest(d, w.req);
        w.ratio = d.getF64();
        w.remaining = d.getU64();
        w.isQuotaWrite = d.getBool();
        w.fractionCharged = d.getF64();
    }
    if (d.getU64() != retentionFifo.size())
        mct_panic("checkpoint controller retention size mismatch");
    for (auto &fifo : retentionFifo) {
        fifo.clear();
        const std::uint64_t len = d.getU64();
        for (std::uint64_t i = 0; i < len && d.ok(); ++i) {
            const std::uint64_t row = d.getU64();
            const Tick deadline = d.getU64();
            fifo.emplace_back(row, deadline);
        }
    }
    // The disturb table is lazily allocated, so restore its shape too.
    disturbCount.resize(d.getU64());
    for (std::vector<std::uint16_t> &rows : disturbCount) {
        rows.resize(d.getU64());
        for (std::uint16_t &c : rows)
            c = static_cast<std::uint16_t>(d.getU32());
    }
    inflightCount = d.getU32();
    completed.clear();
    const std::uint64_t nCompleted = d.getU64();
    for (std::uint64_t i = 0; i < nCompleted && d.ok(); ++i) {
        const std::uint64_t id = d.getU64();
        const Tick tick = d.getU64();
        completed.emplace_back(id, tick);
    }
    drainActive = d.getBool();
    recentActivates.clear();
    const std::uint64_t nActivates = d.getU64();
    for (std::uint64_t i = 0; i < nActivates && d.ok(); ++i)
        recentActivates.push_back(d.getU64());
    nextWriteId = d.getU64();
    st.deserialize(d);
    nDrains = d.getU64();
}

} // namespace mct
