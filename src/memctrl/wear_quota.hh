/**
 * @file
 * Wear Quota (paper Section 3.1, from Mellow Writes ISCA'16).
 *
 * Execution is divided into small time slices and each slice is
 * granted a wear budget consistent with the target lifetime. If, at a
 * slice boundary, the cumulative wear since the quota was armed
 * exceeds the cumulative budget, the entire next slice is restricted:
 * every write is issued with the slowest (4x) latency and write
 * cancellation is enforced so reads are not penalized.
 */

#ifndef MCT_MEMCTRL_WEAR_QUOTA_HH
#define MCT_MEMCTRL_WEAR_QUOTA_HH

#include <string>

#include "common/types.hh"

namespace mct
{

class EventTrace;
class StatRegistry;
class Serializer;
class Deserializer;

/**
 * Tracks the per-slice wear budget and the restricted/unrestricted
 * state machine.
 */
class WearQuota
{
  public:
    /**
     * @param sliceTicks Length of one quota slice.
     * @param totalWearCapacity Fast-write-equivalent wear the whole
     *        device can absorb (sum over banks, after leveling
     *        efficiency).
     */
    WearQuota(Tick sliceTicks, double totalWearCapacity);

    /**
     * Arm or disarm the quota. Wear accumulated before arming does not
     * count against the budget.
     *
     * @param enabled Whether the technique is active.
     * @param targetYears Target lifetime used to size the budget.
     * @param now Current tick.
     * @param currentWear Device total wear at this instant.
     */
    void configure(bool enabled, double targetYears, Tick now,
                   double currentWear);

    /**
     * Advance the slice state machine to @p now. Called by the
     * controller before making issue decisions.
     */
    void update(Tick now, double currentWear);

    /** True while the current slice is restricted to 4x writes. */
    bool restricted() const { return isRestricted; }

    /** True when the technique is armed. */
    bool enabled() const { return isEnabled; }

    /** Number of restricted slices entered so far (statistics). */
    std::uint64_t restrictedSlices() const { return nRestricted; }

    /** Allowed wear per second for the configured target. */
    double budgetRate() const { return ratePerSec; }

    /** Wear counted against the budget at the last update. */
    double lastUsed() const { return lastUsedWear; }

    /** Cumulative budget at the last update. */
    double lastAllowed() const { return lastAllowedWear; }

    /**
     * Fault-injection hook: multiply the quota's perceived elapsed
     * time by @p factor (clamped to [0.01, 100]; non-finite restores
     * 1.0). A skewed clock inflates or starves the budget — the MCT
     * runtime's emergency clamp must catch the resulting overdraw.
     */
    void setClockSkew(double factor);

    /** Current clock-skew factor (1.0 = honest clock). */
    double clockSkew() const { return skew; }

    /** Record restricted/unrestricted transitions into @p t (may be
     *  null to detach). */
    void attachTrace(EventTrace *t) { trace = t; }

    /** Register quota state under @p prefix (e.g. "memctrl.quota"). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint the budget clocks and restriction state machine. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    Tick slice;
    double capacity;
    bool isEnabled = false;
    bool isRestricted = false;
    Tick armTick = 0;
    double armWear = 0.0;
    Tick sliceStart = 0;
    double ratePerSec = 0.0;
    std::uint64_t nRestricted = 0;
    double skew = 1.0;
    double lastUsedWear = 0.0;
    double lastAllowedWear = 0.0;
    EventTrace *trace = nullptr;
};

} // namespace mct

#endif // MCT_MEMCTRL_WEAR_QUOTA_HH
