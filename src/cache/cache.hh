/**
 * @file
 * Set-associative write-back cache with true-LRU replacement and a
 * per-stack-position hit histogram.
 *
 * The histogram drives Eager Mellow Writes (paper Section 3.1): the N
 * least-recently-used stack positions are considered "useless" when
 * they contribute less than 1/eager_threshold of all hits, and dirty
 * lines residing there may be written back to NVM early.
 */

#ifndef MCT_CACHE_CACHE_HH
#define MCT_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mct
{

class StatRegistry;
class Serializer;
class Deserializer;

/** Geometry of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 4;
};

/** Result of an access or writeback: the line that was displaced. */
struct Victim
{
    bool valid = false;
    bool dirty = false;
    Addr addr = 0;
};

/** Cumulative per-cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t eagerCleaned = 0;
    std::uint64_t rewrites = 0; // re-dirtied after eager cleaning
};

/**
 * One cache level. The hierarchy composes these; this class knows
 * nothing about other levels or memory.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr; on a miss, install the line and report the
     * displaced victim. Marks the line dirty when @p write.
     *
     * @return true on hit.
     */
    bool access(Addr addr, bool write, Victim &victim);

    /**
     * Install-or-dirty a line written back from an upper level; the
     * line becomes dirty regardless of prior state.
     */
    void writeback(Addr addr, Victim &victim);

    /** True when the line is present. */
    bool contains(Addr addr) const;

    /** True when the line is present and dirty. */
    bool isDirty(Addr addr) const;

    /**
     * Eager mellow-write candidate collection. Appends up to
     * @p maxCount dirty-line addresses currently sitting in the
     * "useless" LRU positions implied by @p eagerThreshold, marking
     * each clean (the caller is about to write them to NVM). Lines
     * re-dirtied later are counted as rewrites.
     *
     * @return number of candidates appended.
     */
    unsigned collectEagerCandidates(int eagerThreshold, unsigned maxCount,
                                    std::vector<Addr> &out);

    /**
     * Number of LRU-end stack positions whose combined hit share is
     * below 1/eagerThreshold (the "useless" region).
     */
    unsigned uselessPositions(int eagerThreshold) const;

    /** Per-stack-position hit counts, MRU first. */
    const std::vector<std::uint64_t> &positionHits() const
    {
        return posHits;
    }

    /** Cumulative statistics. */
    const CacheStats &stats() const { return st; }

    /**
     * Register this cache's counters under @p prefix (dotted path,
     * e.g. "cache.l1d"). The registry reads the live counters through
     * closures; the access hot path is untouched.
     */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Geometry. */
    const CacheParams &params() const { return p; }

    /** Number of sets. */
    std::uint64_t numSets() const { return sets; }

    /** Invalidate everything and clear statistics. */
    void reset();

    /** Checkpoint lines, LRU clocks, histogram, and statistics. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize() (same geometry). */
    void deserialize(Deserializer &d);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool eagerClean = false; // cleaned by an eager writeback
        std::uint64_t lastUse = 0;
    };

    CacheParams p;
    std::uint64_t sets;
    std::vector<Line> lines;
    std::vector<std::uint64_t> posHits;
    std::uint64_t useCounter = 0;
    std::uint64_t scanCursor = 0;  // rotating eager-scan position
    std::uint64_t sinceDecay = 0;
    CacheStats st;

    /** Histogram half-life in accesses, so phases age out. */
    static constexpr std::uint64_t decayPeriod = 1 << 16;

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *find(Addr addr);
    const Line *find(Addr addr) const;

    /** LRU stack depth of the given line within its set (0 = MRU). */
    unsigned stackPosition(const Line &line) const;

    void decayHistogram();
};

} // namespace mct

#endif // MCT_CACHE_CACHE_HH
