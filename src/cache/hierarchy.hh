/**
 * @file
 * Three-level cache hierarchy (Table 8: 32 KB L1D, 256 KB L2, 2 MB
 * shared L3). The L3 may be shared between several hierarchies in the
 * multi-core system, in which case each core owns private L1/L2 and a
 * pointer to the common L3.
 */

#ifndef MCT_CACHE_HIERARCHY_HH
#define MCT_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/types.hh"

namespace mct
{

class SpanTrace;
class Serializer;
class Deserializer;

/** Geometry of all levels. */
struct HierarchyParams
{
    CacheParams l1{"L1D", 32 * 1024, 4};
    CacheParams l2{"L2", 256 * 1024, 8};
    CacheParams l3{"L3", 2 * 1024 * 1024, 16};
};

/** What one CPU access did to the hierarchy. */
struct AccessOutcome
{
    /** 1, 2, or 3 for a cache hit; 0 when NVM must be read. */
    int hitLevel = 0;

    /** Dirty L3 victims that must be written back to NVM. */
    std::vector<Addr> writebacks;
};

/**
 * Composes the cache levels; knows nothing about timing (the core
 * model translates hit levels into cycles) or about the memory
 * controller (the system submits the returned writebacks).
 */
class CacheHierarchy
{
  public:
    /** Private three-level hierarchy. */
    explicit CacheHierarchy(const HierarchyParams &params);

    /** Private L1/L2 over a shared L3 (multi-core). */
    CacheHierarchy(const HierarchyParams &params,
                   std::shared_ptr<Cache> sharedL3);

    /**
     * Perform one data access. The outcome reports the hit level and
     * any dirty lines pushed out of the L3 toward memory.
     */
    void access(Addr addr, bool write, AccessOutcome &outcome);

    /** The last-level cache (eager-writeback candidate source). */
    Cache &llc() { return *l3; }

    /** The last-level cache, read-only. */
    const Cache &llc() const { return *l3; }

    /** L1 data cache. */
    const Cache &l1d() const { return l1; }

    /** L2 cache. */
    const Cache &l2c() const { return l2; }

    /** Invalidate all levels (L3 too, shared or not). */
    void reset();

    /** Register all levels' counters under @p prefix ("cache" gives
     *  cache.l1d.*, cache.l2.*, cache.llc.*). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Record per-level probe marks on sampled request spans. */
    void attachSpans(SpanTrace *t) { spans = t; }

    /** Checkpoint all three levels (L3 included, shared or not). */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize() (same geometry). */
    void deserialize(Deserializer &d);

  private:
    Cache l1;
    Cache l2;
    std::shared_ptr<Cache> l3;
    SpanTrace *spans = nullptr;

    /** Push a dirty line down one level, cascading L3 evictions. */
    void writebackToL2(Addr addr, AccessOutcome &outcome);
    void writebackToL3(Addr addr, AccessOutcome &outcome);
};

} // namespace mct

#endif // MCT_CACHE_HIERARCHY_HH
