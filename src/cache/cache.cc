#include "cache/cache.hh"

#include <algorithm>

#include "common/instrument.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace mct
{

Cache::Cache(const CacheParams &params)
    : p(params)
{
    if (p.ways == 0 || p.sizeBytes == 0)
        mct_fatal("Cache ", p.name, ": ways and size must be positive");
    if (p.sizeBytes % (static_cast<std::uint64_t>(p.ways) * lineBytes))
        mct_fatal("Cache ", p.name, ": size not divisible by ways*line");
    sets = p.sizeBytes / lineBytes / p.ways;
    if (sets == 0 || (sets & (sets - 1)) != 0)
        mct_fatal("Cache ", p.name, ": set count must be a power of two");
    lines.resize(sets * p.ways);
    posHits.assign(p.ways, 0);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr / lineBytes) & (sets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / lineBytes / sets;
}

Cache::Line *
Cache::find(Addr addr)
{
    const std::uint64_t s = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines[s * p.ways];
    for (unsigned w = 0; w < p.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

unsigned
Cache::stackPosition(const Line &line) const
{
    const std::size_t idx = static_cast<std::size_t>(&line - &lines[0]);
    const std::size_t setBase = idx - (idx % p.ways);
    unsigned pos = 0;
    for (unsigned w = 0; w < p.ways; ++w) {
        const Line &other = lines[setBase + w];
        if (&other != &line && other.valid && other.lastUse > line.lastUse)
            ++pos;
    }
    return pos;
}

bool
Cache::access(Addr addr, bool write, Victim &victim)
{
    ++st.accesses;
    if (++sinceDecay >= decayPeriod)
        decayHistogram();
    victim = Victim{};

    if (Line *line = find(addr)) {
        ++st.hits;
        ++posHits[stackPosition(*line)];
        line->lastUse = ++useCounter;
        if (write) {
            if (line->eagerClean && !line->dirty)
                ++st.rewrites;
            line->dirty = true;
            line->eagerClean = false;
        }
        return true;
    }

    // Miss: install, evicting the LRU way (preferring invalid ways).
    const std::uint64_t s = setIndex(addr);
    Line *base = &lines[s * p.ways];
    Line *slot = nullptr;
    for (unsigned w = 0; w < p.ways; ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
    }
    if (!slot) {
        slot = &base[0];
        for (unsigned w = 1; w < p.ways; ++w) {
            if (base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
        ++st.evictions;
        if (slot->dirty)
            ++st.dirtyEvictions;
        victim.valid = true;
        victim.dirty = slot->dirty;
        victim.addr = (slot->tag * sets +
                       (static_cast<Addr>(s))) * lineBytes;
    }
    slot->tag = tagOf(addr);
    slot->valid = true;
    slot->dirty = write;
    slot->eagerClean = false;
    slot->lastUse = ++useCounter;
    return false;
}

void
Cache::writeback(Addr addr, Victim &victim)
{
    victim = Victim{};
    if (Line *line = find(addr)) {
        if (line->eagerClean && !line->dirty)
            ++st.rewrites;
        line->dirty = true;
        line->eagerClean = false;
        // A writeback does not constitute a use for recency purposes;
        // the line keeps its stack position.
        return;
    }
    // Write-allocate the incoming dirty line.
    const std::uint64_t s = setIndex(addr);
    Line *base = &lines[s * p.ways];
    Line *slot = nullptr;
    for (unsigned w = 0; w < p.ways; ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
    }
    if (!slot) {
        slot = &base[0];
        for (unsigned w = 1; w < p.ways; ++w) {
            if (base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
        ++st.evictions;
        if (slot->dirty)
            ++st.dirtyEvictions;
        victim.valid = true;
        victim.dirty = slot->dirty;
        victim.addr = (slot->tag * sets +
                       (static_cast<Addr>(s))) * lineBytes;
    }
    slot->tag = tagOf(addr);
    slot->valid = true;
    slot->dirty = true;
    slot->eagerClean = false;
    // Inserted near the LRU end: writeback-allocated lines are not
    // expected to be re-referenced soon.
    slot->lastUse = useCounter > lines.size() ? useCounter - lines.size()
                                              : 0;
}

bool
Cache::contains(Addr addr) const
{
    return find(addr) != nullptr;
}

bool
Cache::isDirty(Addr addr) const
{
    const Line *line = find(addr);
    return line && line->dirty;
}

unsigned
Cache::uselessPositions(int eagerThreshold) const
{
    if (eagerThreshold <= 0)
        return 0;
    std::uint64_t total = 0;
    for (auto h : posHits)
        total += h;
    if (total == 0)
        return 0;
    // Largest N such that the N LRU-end positions together receive
    // fewer than total/eagerThreshold hits.
    const double budget = static_cast<double>(total) /
                          static_cast<double>(eagerThreshold);
    std::uint64_t acc = 0;
    unsigned n = 0;
    for (unsigned w = p.ways; w-- > 0;) {
        acc += posHits[w];
        if (static_cast<double>(acc) >= budget)
            break;
        ++n;
    }
    return n;
}

unsigned
Cache::collectEagerCandidates(int eagerThreshold, unsigned maxCount,
                              std::vector<Addr> &out)
{
    const unsigned dead = uselessPositions(eagerThreshold);
    if (dead == 0 || maxCount == 0)
        return 0;
    unsigned found = 0;
    // Rotate through the sets so all of the LLC is eventually scanned
    // across calls; each call is bounded so the scanner stays cheap
    // (hardware would scan a few sets per idle interval, too).
    const std::uint64_t budget = std::min<std::uint64_t>(sets, 64);
    for (std::uint64_t visited = 0; visited < budget && found < maxCount;
         ++visited) {
        const std::uint64_t s = scanCursor;
        scanCursor = (scanCursor + 1) & (sets - 1);
        Line *base = &lines[s * p.ways];
        for (unsigned w = 0; w < p.ways && found < maxCount; ++w) {
            Line &line = base[w];
            if (!line.valid || !line.dirty)
                continue;
            if (stackPosition(line) < p.ways - dead)
                continue;
            line.dirty = false;
            line.eagerClean = true;
            ++st.eagerCleaned;
            out.push_back((line.tag * sets + s) * lineBytes);
            ++found;
        }
    }
    return found;
}

void
Cache::decayHistogram()
{
    sinceDecay = 0;
    for (auto &h : posHits)
        h >>= 1;
}

void
Cache::reset()
{
    for (auto &line : lines)
        line = Line{};
    posHits.assign(p.ways, 0);
    useCounter = 0;
    scanCursor = 0;
    sinceDecay = 0;
    st = CacheStats{};
}

void
Cache::serialize(Serializer &s) const
{
    s.putU64(lines.size());
    for (const Line &line : lines) {
        s.putU64(line.tag);
        s.putBool(line.valid);
        s.putBool(line.dirty);
        s.putBool(line.eagerClean);
        s.putU64(line.lastUse);
    }
    s.putU64(posHits.size());
    for (const std::uint64_t h : posHits)
        s.putU64(h);
    s.putU64(useCounter);
    s.putU64(scanCursor);
    s.putU64(sinceDecay);
    s.putU64(st.accesses);
    s.putU64(st.hits);
    s.putU64(st.evictions);
    s.putU64(st.dirtyEvictions);
    s.putU64(st.eagerCleaned);
    s.putU64(st.rewrites);
}

void
Cache::deserialize(Deserializer &d)
{
    if (d.getU64() != lines.size())
        mct_panic("checkpoint cache geometry mismatch: ", p.name);
    for (Line &line : lines) {
        line.tag = d.getU64();
        line.valid = d.getBool();
        line.dirty = d.getBool();
        line.eagerClean = d.getBool();
        line.lastUse = d.getU64();
    }
    if (d.getU64() != posHits.size())
        mct_panic("checkpoint cache way-count mismatch: ", p.name);
    for (std::uint64_t &h : posHits)
        h = d.getU64();
    useCounter = d.getU64();
    scanCursor = d.getU64();
    sinceDecay = d.getU64();
    st.accesses = d.getU64();
    st.hits = d.getU64();
    st.evictions = d.getU64();
    st.dirtyEvictions = d.getU64();
    st.eagerCleaned = d.getU64();
    st.rewrites = d.getU64();
}

void
Cache::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    const CacheStats *s = &st;
    reg.addCounter(prefix + ".accesses", [s] { return s->accesses; });
    reg.addCounter(prefix + ".hits", [s] { return s->hits; });
    reg.addGauge(prefix + ".hit_rate", [s] {
        return s->accesses ? static_cast<double>(s->hits) /
                                 static_cast<double>(s->accesses)
                           : 0.0;
    });
    reg.addCounter(prefix + ".evictions", [s] { return s->evictions; });
    reg.addCounter(prefix + ".dirty_evictions",
                   [s] { return s->dirtyEvictions; });
    reg.addCounter(prefix + ".eager_cleaned",
                   [s] { return s->eagerCleaned; },
                   "lines cleaned by eager mellow writebacks");
    reg.addCounter(prefix + ".rewrites", [s] { return s->rewrites; },
                   "eagerly-cleaned lines dirtied again");
}

} // namespace mct
