#include "cache/hierarchy.hh"

#include "common/instrument.hh"

namespace mct
{

CacheHierarchy::CacheHierarchy(const HierarchyParams &params)
    : l1(params.l1), l2(params.l2),
      l3(std::make_shared<Cache>(params.l3))
{
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               std::shared_ptr<Cache> sharedL3)
    : l1(params.l1), l2(params.l2), l3(std::move(sharedL3))
{
}

void
CacheHierarchy::access(Addr addr, bool write, AccessOutcome &outcome)
{
    outcome.hitLevel = 0;
    outcome.writebacks.clear();

    Victim v1;
    if (l1.access(addr, write, v1)) {
        outcome.hitLevel = 1;
        if (spans)
            spans->probe(SpanStage::L1, true);
        return;
    }
    if (spans)
        spans->probe(SpanStage::L1, false);
    // L1 miss: the displaced dirty line moves into L2.
    if (v1.valid && v1.dirty)
        writebackToL2(v1.addr, outcome);

    Victim v2;
    if (l2.access(addr, false, v2)) {
        outcome.hitLevel = 2;
        if (spans)
            spans->probe(SpanStage::L2, true);
        return;
    }
    if (spans)
        spans->probe(SpanStage::L2, false);
    if (v2.valid && v2.dirty)
        writebackToL3(v2.addr, outcome);

    Victim v3;
    if (l3->access(addr, false, v3)) {
        outcome.hitLevel = 3;
        if (spans)
            spans->probe(SpanStage::Llc, true);
        if (v3.valid && v3.dirty)
            outcome.writebacks.push_back(v3.addr);
        return;
    }
    if (spans)
        spans->probe(SpanStage::Llc, false);
    if (v3.valid && v3.dirty)
        outcome.writebacks.push_back(v3.addr);
    outcome.hitLevel = 0; // fill from NVM
}

void
CacheHierarchy::writebackToL2(Addr addr, AccessOutcome &outcome)
{
    Victim victim;
    l2.writeback(addr, victim);
    if (victim.valid && victim.dirty)
        writebackToL3(victim.addr, outcome);
}

void
CacheHierarchy::writebackToL3(Addr addr, AccessOutcome &outcome)
{
    Victim victim;
    l3->writeback(addr, victim);
    if (victim.valid && victim.dirty)
        outcome.writebacks.push_back(victim.addr);
}

void
CacheHierarchy::reset()
{
    l1.reset();
    l2.reset();
    l3->reset();
}

void
CacheHierarchy::serialize(Serializer &s) const
{
    l1.serialize(s);
    l2.serialize(s);
    l3->serialize(s);
}

void
CacheHierarchy::deserialize(Deserializer &d)
{
    l1.deserialize(d);
    l2.deserialize(d);
    l3->deserialize(d);
}

void
CacheHierarchy::registerStats(StatRegistry &reg,
                              const std::string &prefix) const
{
    l1.registerStats(reg, prefix + ".l1d");
    l2.registerStats(reg, prefix + ".l2");
    l3->registerStats(reg, prefix + ".llc");
}

} // namespace mct
